package core

import (
	"math"
	"strings"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// triPhases yields three well-separated clusters per frame, so a
// single-cluster collapse elsewhere in the series is detectable.
func triPhases() []phaseDef {
	return []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2)},
		{IPC: 0.25, Instr: 6e5, Stack: stackR("c", 3)},
	}
}

// deadTrace is what a crashed experiment leaves behind: metadata, no
// bursts.
func deadTrace(label string, ranks int) *trace.Trace {
	return &trace.Trace{Meta: trace.Metadata{App: "synthetic", Label: label, Ranks: ranks}}
}

func TestQuarantineCorruptBursts(t *testing.T) {
	tr := mkTrace("x", 4, 4, simplePhases())
	// Corrupt four bursts four different ways.
	tr.Bursts[0].Counters[metrics.CtrL1DMisses] = math.NaN()
	tr.Bursts[1].Counters = metrics.CounterVector{} // dead PAPI read
	tr.Bursts[2].DurationNS = -5
	tr.Bursts[3].Task = 99 // outside Ranks=4
	frames, err := BuildFrames([]*trace.Trace{tr, mkTrace("y", 4, 4, simplePhases())}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]
	if f.Quarantined != 4 {
		t.Errorf("quarantined = %d, want 4 (%v)", f.Quarantined, f.QuarantinedBy)
	}
	for _, reason := range []string{"nan-counter", "zero-counter", "negative-duration", "task-out-of-range"} {
		if f.QuarantinedBy[reason] != 1 {
			t.Errorf("QuarantinedBy[%s] = %d, want 1", reason, f.QuarantinedBy[reason])
		}
	}
	if f.Degraded {
		t.Errorf("frame with 4/%d corrupt bursts should not be degraded: %s", len(tr.Bursts), f.DegradedReason)
	}
	if frames[1].Quarantined != 0 || frames[1].QuarantinedBy != nil {
		t.Errorf("clean frame reports quarantine: %d %v", frames[1].Quarantined, frames[1].QuarantinedBy)
	}
	res, err := NewTracker(testConfig()).Track(frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage = %v after quarantine, want 1", res.Coverage)
	}
	d := res.Diagnostics
	if d.BurstsQuarantined != 4 || d.Clean() {
		t.Errorf("diagnostics: %+v", d)
	}
	if s := d.Summary(); !strings.Contains(s, "quarantined 4 bursts") {
		t.Errorf("summary: %q", s)
	}
}

func TestCleanRunDiagnosticsClean(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.Clean() {
		t.Errorf("clean study reports diagnostics: %s", res.Diagnostics.Summary())
	}
	if res.Diagnostics.Summary() != "clean" {
		t.Errorf("summary: %q", res.Diagnostics.Summary())
	}
}

func TestBridgeOverDeadExperiment(t *testing.T) {
	frames, err := BuildFrames([]*trace.Trace{
		mkTrace("x", 4, 4, simplePhases()),
		deadTrace("dead", 4),
		mkTrace("z", 4, 4, simplePhases()),
	}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !frames[1].Degraded {
		t.Fatal("empty middle frame not marked degraded")
	}
	if frames[1].DegradedReason != "no bursts after quarantine and filtering" {
		t.Errorf("reason: %q", frames[1].DegradedReason)
	}
	res, err := NewTracker(testConfig()).Track(frames)
	if err != nil {
		t.Fatal(err)
	}
	// One pair, bridging frame 0 directly to frame 2.
	if len(res.Pairs) != 1 || res.Pairs[0].From != 0 || res.Pairs[0].To != 2 {
		t.Fatalf("pairs: %+v", res.Pairs)
	}
	d := res.Diagnostics
	if d.FramesDegraded != 1 || d.FramesBridged != 1 {
		t.Errorf("diagnostics: %+v", d)
	}
	if len(d.Bridges) != 1 || d.Bridges[0] != [2]int{0, 2} {
		t.Errorf("bridges: %v", d.Bridges)
	}
	// The two phases still span the healthy frames with full coverage.
	if res.OptimalK != 2 || res.SpanningCount != 2 || res.Coverage != 1 {
		t.Errorf("optimalK=%d spanning=%d coverage=%v", res.OptimalK, res.SpanningCount, res.Coverage)
	}
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		if reg == nil {
			t.Fatalf("phase %d untracked", p)
		}
		if !reg.Spanning {
			t.Errorf("phase %d region not spanning despite bridge", p)
		}
		if len(reg.Members[1]) != 0 {
			t.Errorf("phase %d region has members in the degraded frame: %v", p, reg.Members[1])
		}
	}
	if s := d.Summary(); !strings.Contains(s, "bridged 1 frame(s) (0→2)") {
		t.Errorf("summary: %q", s)
	}
}

func TestCollapsedFrameBridged(t *testing.T) {
	// The middle experiment's bursts all land in one spot: clustering
	// collapses to a single object while its neighbours resolve three.
	collapsed := []phaseDef{
		{IPC: 0.8, Instr: 5e6, Stack: stackR("a", 1)},
		{IPC: 0.8, Instr: 5e6, Stack: stackR("b", 2)},
		{IPC: 0.8, Instr: 5e6, Stack: stackR("c", 3)},
	}
	frames, err := BuildFrames([]*trace.Trace{
		mkTrace("x", 4, 4, triPhases()),
		mkTrace("flat", 4, 4, collapsed),
		mkTrace("z", 4, 4, triPhases()),
	}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !frames[1].Degraded || frames[1].DegradedReason != "clustering collapsed to a single object" {
		t.Fatalf("middle frame: degraded=%v reason=%q (clusters=%d)",
			frames[1].Degraded, frames[1].DegradedReason, frames[1].NumClusters)
	}
	res, err := NewTracker(testConfig()).Track(frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.FramesBridged != 1 {
		t.Errorf("diagnostics: %+v", res.Diagnostics)
	}
	if res.OptimalK != 3 || res.SpanningCount != 3 {
		t.Errorf("optimalK=%d spanning=%d", res.OptimalK, res.SpanningCount)
	}
}

func TestLowResolutionSeriesNotCollapsed(t *testing.T) {
	// A genuine one-cluster study (max clusters in the series < 3) must
	// keep its frames healthy: that is structure, not damage.
	single := []phaseDef{{IPC: 1.0, Instr: 8e6, Stack: stackR("a", 1)}}
	frames, err := BuildFrames([]*trace.Trace{
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, single),
	}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if f.Degraded {
			t.Errorf("frame %d degraded in a low-resolution series: %s", i, f.DegradedReason)
		}
	}
}

func TestAllDegradedIsError(t *testing.T) {
	_, err := BuildFrames([]*trace.Trace{
		deadTrace("a", 4),
		deadTrace("b", 4),
	}, testConfig())
	if err == nil {
		t.Fatal("all-degraded sequence accepted")
	}
	if !strings.Contains(err.Error(), "degraded") {
		t.Errorf("error: %v", err)
	}
}

func TestExportCarriesDiagnostics(t *testing.T) {
	frames, err := BuildFrames([]*trace.Trace{
		mkTrace("x", 4, 4, simplePhases()),
		deadTrace("dead", 4),
		mkTrace("z", 4, 4, simplePhases()),
	}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewTracker(testConfig()).Track(frames)
	if err != nil {
		t.Fatal(err)
	}
	exp := res.Export(nil)
	if exp.Diagnostics.FramesBridged != 1 {
		t.Errorf("export diagnostics: %+v", exp.Diagnostics)
	}
	if !exp.Frames[1].Degraded || exp.Frames[1].DegradedReason == "" {
		t.Errorf("export frame 1: %+v", exp.Frames[1])
	}
}
