package core

import (
	"testing"

	"perftrack/internal/trace"
)

func TestTrackIdentity(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 || res.OptimalK != 2 {
		t.Fatalf("spanning=%d optimal=%d", res.SpanningCount, res.OptimalK)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage = %v, want 1", res.Coverage)
	}
	// Regions match ground-truth phases one to one.
	for p := 1; p <= 2; p++ {
		if res.RegionByPhase(p) == nil {
			t.Errorf("phase %d untracked", p)
		}
	}
}

func TestTrackNoFrames(t *testing.T) {
	if _, err := NewTracker(testConfig()).Track(nil); err == nil {
		t.Error("empty frame sequence accepted")
	}
}

func TestTrackSingleFrame(t *testing.T) {
	res, err := buildAndTrack(testConfig(), mkTrace("x", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	// No pairs, but each cluster is its own spanning region.
	if len(res.Pairs) != 0 {
		t.Errorf("pairs = %d", len(res.Pairs))
	}
	if res.SpanningCount != 2 {
		t.Errorf("spanning = %d", res.SpanningCount)
	}
}

func TestTrackBimodalSplitGrouped(t *testing.T) {
	// One phase splits across ranks in the second experiment: SPMD must
	// group the pair into a single wide relation (the WRF 256-task case).
	base := simplePhases()
	split := []phaseDef{
		base[0],
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2), PerRank: func(r int) (float64, float64) {
			if r%2 == 0 {
				return 0.68, 4e6
			}
			return 0.45, 4e6
		}},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 8, 4, base),
		mkTrace("y", 8, 4, split))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames[1].NumClusters != 3 {
		t.Fatalf("second frame clusters = %d, want 3", res.Frames[1].NumClusters)
	}
	if res.SpanningCount != 2 {
		t.Fatalf("spanning = %d, want 2 (pair grouped)", res.SpanningCount)
	}
	// The region holding phase 2 spans both mode clusters in frame 1.
	reg := res.RegionByPhase(2)
	if reg == nil {
		t.Fatal("phase 2 untracked")
	}
	if len(reg.Members[1]) != 2 {
		t.Errorf("bimodal region members in frame 1 = %v, want 2 clusters", reg.Members[1])
	}
}

func TestTrackCallstackVeto(t *testing.T) {
	// Two phases swap their performance-space positions between the two
	// experiments. Displacement alone would cross-link them; the
	// call-stack veto must keep identities straight.
	a := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2)},
	}
	b := []phaseDef{
		{IPC: 0.6, Instr: 4e6, Stack: stackR("a", 1)}, // "a" moved to b's spot
		{IPC: 1.2, Instr: 1e7, Stack: stackR("b", 2)}, // "b" moved to a's spot
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 {
		t.Fatalf("spanning = %d, want 2", res.SpanningCount)
	}
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		if reg == nil {
			t.Fatalf("phase %d untracked", p)
		}
		// Verify the region holds the same phase in both frames.
		for fi := range res.Frames {
			for _, cid := range reg.Members[fi] {
				if got := majorityPhase(res.Frames[fi], cid); got != p {
					t.Errorf("region of phase %d contains phase %d in frame %d", p, got, fi)
				}
			}
		}
	}
}

func TestTrackCallstackRescueLongJump(t *testing.T) {
	// The second experiment multiplies every instruction count by 40
	// (the NAS BT class-W to class-A jump): nearest-neighbour
	// classification misbinds, and the unique call-stack references must
	// rescue the correspondence.
	a := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 2e6, Stack: stackR("b", 2)},
	}
	b := []phaseDef{
		{IPC: 0.7, Instr: 4e8, Stack: stackR("a", 1)},
		{IPC: 0.4, Instr: 8e7, Stack: stackR("b", 2)},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 || res.Coverage != 1 {
		t.Fatalf("spanning=%d coverage=%v, want full tracking", res.SpanningCount, res.Coverage)
	}
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		if reg == nil {
			t.Fatalf("phase %d untracked", p)
		}
		for fi := range res.Frames {
			for _, cid := range reg.Members[fi] {
				if got := majorityPhase(res.Frames[fi], cid); got != p {
					t.Errorf("phase %d region holds phase %d in frame %d", p, got, fi)
				}
			}
		}
	}
}

func TestTrackSequenceSplitsWideRelation(t *testing.T) {
	// Both phases share one call-stack reference and swap positions, so
	// neither displacement nor the stack veto can separate them — only
	// the execution sequence can (the paper's Figure 5 scenario).
	a := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("same", 7)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("same", 7)},
	}
	b := []phaseDef{
		{IPC: 1.1, Instr: 9e6, Stack: stackR("same", 7)},
		{IPC: 0.55, Instr: 3.6e6, Stack: stackR("same", 7)},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 6, a),
		mkTrace("y", 4, 6, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 {
		t.Fatalf("spanning = %d, want 2", res.SpanningCount)
	}
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		if reg == nil {
			t.Fatalf("phase %d untracked", p)
		}
	}
}

func TestTrackDisappearingRegion(t *testing.T) {
	// A phase present only in the first experiment becomes a non
	// spanning region and lowers nothing but itself.
	a := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("gone", 9)},
	}
	b := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 1 {
		t.Errorf("spanning = %d, want 1", res.SpanningCount)
	}
	var partial *TrackedRegion
	for _, tr := range res.Regions {
		if !tr.Spanning {
			partial = tr
		}
	}
	if partial == nil {
		t.Fatal("vanished region not reported")
	}
	if len(partial.Members[1]) != 0 {
		t.Errorf("vanished region present in frame 1: %v", partial.Members)
	}
}

func TestTrackChainAcrossManyFrames(t *testing.T) {
	// Five experiments with a slow drift: the chain must hold the
	// regions together end to end.
	mk := func(i int) *trace.Trace {
		f := 1 - 0.03*float64(i)
		return mkTrace("x", 4, 4, []phaseDef{
			{IPC: 1.2 * f, Instr: 1e7, Stack: stackR("a", 1)},
			{IPC: 0.6 * f, Instr: 4e6, Stack: stackR("b", 2)},
		})
	}
	traces := []*trace.Trace{mk(0), mk(1), mk(2), mk(3), mk(4)}
	res, err := buildAndTrack(testConfig(), traces...)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 || res.Coverage != 1 {
		t.Fatalf("spanning=%d coverage=%v", res.SpanningCount, res.Coverage)
	}
	if len(res.Pairs) != 4 {
		t.Errorf("pairs = %d", len(res.Pairs))
	}
}

func TestRegionLabels(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	for fi := range res.Frames {
		labels := res.RegionLabels(fi)
		if len(labels) != len(res.Frames[fi].Labels) {
			t.Fatalf("label slice size mismatch")
		}
		// Every clustered burst maps to a region; region ids are stable
		// across frames (that is the renaming guarantee).
		for i, l := range labels {
			if res.Frames[fi].Labels[i] > 0 && l == 0 {
				t.Errorf("clustered burst %d unlabelled", i)
			}
		}
	}
	// The same phase gets the same region id in both frames.
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		ids := map[int]bool{}
		for fi := range res.Frames {
			labels := res.RegionLabels(fi)
			for i, l := range labels {
				if l > 0 && res.Frames[fi].Trace.Bursts[i].Phase == p {
					ids[l] = true
				}
			}
		}
		if len(ids) != 1 {
			t.Errorf("phase %d carries region ids %v, want exactly one", p, ids)
		}
		if reg != nil && !ids[reg.ID] {
			t.Errorf("phase %d labels disagree with RegionByPhase", p)
		}
	}
}

func TestRegionOrderingByDuration(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	prev := res.Regions[0].TotalDurationNS
	for _, tr := range res.Regions[1:] {
		if tr.Spanning && tr.TotalDurationNS > prev {
			t.Errorf("regions not ordered by duration: %v after %v", tr.TotalDurationNS, prev)
		}
		prev = tr.TotalDurationNS
	}
	if res.Region(1) == nil || res.Region(99) != nil {
		t.Error("Region lookup broken")
	}
	if res.RegionOf(0, res.Regions[0].Members[0][0]) != res.Regions[0].ID {
		t.Error("RegionOf disagreed with Members")
	}
}

func TestTrackAblationDisableAll(t *testing.T) {
	// With SPMD, callstack and sequence disabled, the bimodal split case
	// must degrade: the pair can no longer be grouped reliably into one
	// region — demonstrating the evaluators' contribution.
	base := simplePhases()
	split := []phaseDef{
		base[0],
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2), PerRank: func(r int) (float64, float64) {
			if r%2 == 0 {
				return 0.75, 4e6
			}
			return 0.45, 4e6
		}},
	}
	cfg := testConfig()
	cfg.DisableSPMD = true
	cfg.DisableCallstack = true
	cfg.DisableSequence = true
	res, err := buildAndTrack(cfg,
		mkTrace("x", 8, 4, base),
		mkTrace("y", 8, 4, split))
	if err != nil {
		t.Fatal(err)
	}
	full, err := buildAndTrack(testConfig(),
		mkTrace("x", 8, 4, base),
		mkTrace("y", 8, 4, split))
	if err != nil {
		t.Fatal(err)
	}
	if full.SpanningCount != 2 {
		t.Fatalf("full tracker spanning = %d, want 2", full.SpanningCount)
	}
	// The ablated tracker is allowed to find correspondences through
	// displacement only, but must not crash and must report its pairs.
	if len(res.Pairs) != 1 {
		t.Errorf("ablated pairs = %d", len(res.Pairs))
	}
	if res.Pairs[0].Seq != nil {
		t.Error("sequence matrix computed despite DisableSequence")
	}
}

func TestRelationWide(t *testing.T) {
	if (Relation{A: []int{1}, B: []int{2}}).Wide() {
		t.Error("1:1 relation reported wide")
	}
	if !(Relation{A: []int{1, 2}, B: []int{3}}).Wide() {
		t.Error("2:1 relation not wide")
	}
}

func TestUniqueCandidate(t *testing.T) {
	m := NewMatrix("t", 0, 1, 2, 3)
	m.Set(1, 2, 0.5)
	if got := uniqueCandidate(m, 1); got != 2 {
		t.Errorf("unique = %d", got)
	}
	m.Set(1, 3, 0.5)
	if got := uniqueCandidate(m, 1); got != 0 {
		t.Errorf("ambiguous row should give 0, got %d", got)
	}
	if got := uniqueCandidate(m, 2); got != 0 {
		t.Errorf("empty row should give 0, got %d", got)
	}
}
