package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The result cache serves stored bytes for identical inputs, so WriteJSON
// must be byte-deterministic: every map in the export path marshals its
// keys in sorted order, explicitly, not by accident of encoding/json.

func TestOrderedTrendsMarshalSorted(t *testing.T) {
	tr := OrderedTrends{
		"IPC":          {1, 2},
		"Instructions": {3},
		"aLowercase":   {4},
		"Bandwidth":    nil,
	}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Bytewise order: uppercase before lowercase.
	wantOrder := []string{`"Bandwidth"`, `"IPC"`, `"Instructions"`, `"aLowercase"`}
	last := -1
	for _, key := range wantOrder {
		i := bytes.Index(b, []byte(key))
		if i < 0 {
			t.Fatalf("key %s missing in %s", key, b)
		}
		if i < last {
			t.Fatalf("key %s out of order in %s", key, b)
		}
		last = i
	}
	// Round-trips as a plain map.
	var back map[string][]float64
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(tr) || back["IPC"][1] != 2 {
		t.Fatalf("round trip lost data: %v", back)
	}
}

func TestQuarantineCountsMarshalSorted(t *testing.T) {
	qc := QuarantineCounts{"zero-duration": 3, "negative-counter": 1, "aberrant-ipc": 2}
	b, err := json.Marshal(qc)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"aberrant-ipc":2,"negative-counter":1,"zero-duration":3}`
	if string(b) != want {
		t.Fatalf("got %s, want %s", b, want)
	}
}

func TestEmptyOrderedMapsMarshal(t *testing.T) {
	for name, v := range map[string]any{
		"trends nil":   OrderedTrends(nil),
		"trends empty": OrderedTrends{},
		"counts nil":   QuarantineCounts(nil),
		"counts empty": QuarantineCounts{},
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := string(b); got != "{}" && got != "null" {
			t.Fatalf("%s: got %s", name, got)
		}
		if strings.Contains(name, "empty") && string(b) != "{}" {
			t.Fatalf("%s: empty map must marshal as {}, got %s", name, b)
		}
	}
}

// TestWriteJSONByteDeterministic runs the full pipeline twice on the same
// input and requires bit-identical exports — the property the service
// cache depends on.
func TestWriteJSONByteDeterministic(t *testing.T) {
	var outs [][]byte
	for i := 0; i < 2; i++ {
		res, err := buildAndTrack(testConfig(),
			mkTrace("x", 4, 4, simplePhases()),
			mkTrace("y", 4, 4, simplePhases()))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf, nil); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("WriteJSON produced different bytes for identical input")
	}
}
