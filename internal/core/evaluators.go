package core

import (
	"runtime"
	"sort"
	"sync"

	"perftrack/internal/align"
	"perftrack/internal/cluster"
	"perftrack/internal/trace"
)

// This file implements the four heuristic evaluators of Section 3. Each
// produces one or more correlation matrices; the combiner (tracker.go)
// merges, prunes and refines their findings.

// Displacement implements the evaluator of Section 3.1: a cross
// classification of every computing burst of frame a onto the objects of
// frame b based on a nearest-neighbour criterion in the (cross-series
// normalised) performance space. Cell (i, j) is the fraction of bursts of
// object A_i whose nearest clustered burst of b belongs to B_j — the
// paper's Figure 3.
func Displacement(a, b *Frame, cfg Config) *Matrix {
	cfg = cfg.withDefaults()
	m := NewMatrix("displacement", a.Index, b.Index, a.NumClusters, b.NumClusters)
	// Index only the clustered points of b, packed into one strided flat
	// array so the NN index needs no per-point boxing.
	dims := 0
	if len(b.Norm) > 0 {
		dims = len(b.Norm[0])
	}
	var x []float64
	var lbl []int
	for i, l := range b.Labels {
		if l > 0 {
			x = append(x, b.Norm[i]...)
			lbl = append(lbl, l)
		}
	}
	if len(lbl) == 0 || a.NumClusters == 0 {
		return m
	}
	nn := cluster.NewNNFlat(x, dims, nnCell)
	// Nearest-neighbour classification of every burst is the hottest loop
	// of the pipeline; the queries are independent, so shard them across
	// the CPUs. Per-worker tallies keep the result bit-identical to the
	// sequential loop.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(a.Labels) {
		workers = 1
	}
	tallies := make([][][]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(a.Labels) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tally := make([][]float64, a.NumClusters+1)
			for i := range tally {
				tally[i] = make([]float64, b.NumClusters+1)
			}
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(a.Labels) {
				hi = len(a.Labels)
			}
			for i := lo; i < hi; i++ {
				la := a.Labels[i]
				if la <= 0 {
					continue
				}
				j, _ := nn.Nearest(a.Norm[i])
				if j < 0 {
					continue
				}
				tally[la][lbl[j]]++
			}
			tallies[w] = tally
		}()
	}
	wg.Wait()
	counts := make([]float64, a.NumClusters+1)
	for _, tally := range tallies {
		for la := 1; la <= a.NumClusters; la++ {
			for lb := 1; lb <= b.NumClusters; lb++ {
				m.P[la][lb] += tally[la][lb]
				counts[la] += tally[la][lb]
			}
		}
	}
	for i := 1; i <= a.NumClusters; i++ {
		if counts[i] == 0 {
			continue
		}
		for j := 1; j <= b.NumClusters; j++ {
			m.P[i][j] /= counts[i]
		}
	}
	m.Threshold(cfg.MinCorrelation)
	return m
}

// nnCell is the grid cell size for nearest-neighbour classification in the
// normalised unit square.
const nnCell = 0.05

// taskSequences extracts the chronological cluster-id sequence of every
// task of the frame (noise bursts skipped), sampling at most sample tasks
// with a uniform stride to bound alignment cost.
func taskSequences(f *Frame, sample int) [][]int {
	perTask := f.Trace.PerTaskSequences()
	tasks := make([]int, 0, len(perTask))
	for t := range perTask {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	if sample > 0 && len(tasks) > sample {
		// A contiguous block of tasks, not a strided one: strides alias
		// with rank-modulo behaviour patterns (e.g. odd/even kernel
		// variants) and would sample a single behaviour mode.
		tasks = tasks[:sample]
	}
	seqs := make([][]int, 0, len(tasks))
	for _, t := range tasks {
		var s []int
		for _, bi := range perTask[t] {
			if l := f.Labels[bi]; l > 0 {
				s = append(s, l)
			}
		}
		seqs = append(seqs, s)
	}
	return seqs
}

// frameAlignment computes the star multiple alignment of the frame's
// per-task cluster sequences.
func frameAlignment(f *Frame, cfg Config) *align.Alignment {
	seqs := taskSequences(f, cfg.SPMDTaskSample)
	return align.Star(seqs, align.DefaultScoring())
}

// FrameAlignment exposes the per-frame star alignment (Fig. 4 style
// analyses and SPMD-ness checks outside the tracker).
func FrameAlignment(f *Frame, cfg Config) *align.Alignment {
	return frameAlignment(f, cfg.withDefaults())
}

// SPMDSimultaneity implements the evaluator of Section 3.2: it aligns the
// per-task cluster sequences of one experiment and reports, for every pair
// of distinct clusters, the probability of being executed at the same time
// by different processes. Row and column frame are the same frame.
func SPMDSimultaneity(f *Frame, al *align.Alignment, cfg Config) *Matrix {
	cfg = cfg.withDefaults()
	m := NewMatrix("spmd", f.Index, f.Index, f.NumClusters, f.NumClusters)
	if f.NumClusters == 0 || al.Columns() == 0 {
		return m
	}
	co := al.CoOccurrence(f.NumClusters + 1)
	for i := 1; i <= f.NumClusters; i++ {
		for j := 1; j <= f.NumClusters; j++ {
			m.P[i][j] = co[i][j]
		}
	}
	m.Threshold(cfg.MinCorrelation)
	return m
}

// SPMDPairs extracts the simultaneous cluster pairs of a frame: pairs
// whose reciprocal co-occurrence meets the SPMD threshold.
func SPMDPairs(m *Matrix, cfg Config) [][2]int {
	cfg = cfg.withDefaults()
	var out [][2]int
	for i := 1; i <= m.Rows(); i++ {
		for j := i + 1; j <= m.Cols(); j++ {
			if m.At(i, j) >= cfg.SPMDThreshold && m.At(j, i) >= cfg.SPMDThreshold {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Callstack implements the evaluator of Section 3.3: cell (i, j) is the
// fraction of bursts of A_i whose call-stack reference also appears among
// the references of B_j. Relations with no code reference in common cannot
// be equivalent; the combiner uses this matrix as a veto.
func Callstack(a, b *Frame, cfg Config) *Matrix {
	cfg = cfg.withDefaults()
	m := NewMatrix("callstack", a.Index, b.Index, a.NumClusters, b.NumClusters)
	for i := 1; i <= a.NumClusters; i++ {
		ai := a.Clusters[i]
		if ai == nil || ai.Size == 0 {
			continue
		}
		for j := 1; j <= b.NumClusters; j++ {
			bj := b.Clusters[j]
			if bj == nil {
				continue
			}
			var shared int
			for st, n := range ai.Stacks {
				if _, ok := bj.Stacks[st]; ok {
					shared += n
				}
			}
			m.P[i][j] = float64(shared) / float64(ai.Size)
		}
	}
	m.Threshold(cfg.MinCorrelation)
	return m
}

// hasStacks reports whether any cluster of the frame carries call-stack
// information; traces captured without references disable the veto.
func hasStacks(f *Frame) bool {
	for _, ci := range f.Clusters[1:] {
		if ci != nil && len(ci.Stacks) > 0 {
			return true
		}
	}
	return false
}

// stacksDisjoint reports whether clusters ai of a and bj of b share no
// call-stack reference (the veto condition). It returns false when either
// side has no stack info, since absence of evidence must not veto.
func stacksDisjoint(a, b *Frame, ai, bj int) bool {
	ca, cb := a.Cluster(ai), b.Cluster(bj)
	if ca == nil || cb == nil || len(ca.Stacks) == 0 || len(cb.Stacks) == 0 {
		return false
	}
	for st := range ca.Stacks {
		if _, ok := cb.Stacks[st]; ok {
			return false
		}
	}
	return true
}

// sharedStack reports whether two clusters of the same frame share a
// reference (used to sanity-check SPMD merges).
func sharedStack(f *Frame, i, j int) bool {
	return !stacksDisjoint(f, f, i, j)
}

// SequenceCorrelate implements the evaluator of Section 3.4: the global
// consensus execution sequences of frames a and b are aligned using the
// already-established relations as pivots, and clusters falling into
// matching positions between pivots are correlated. pivotsA/pivotsB map
// cluster ids to a shared relation identifier (>=1); clusters absent from
// the maps are the unknowns the evaluator tries to bind. Cell (i, j) is
// the fraction of occurrences of A-cluster i aligned opposite B-cluster j.
func SequenceCorrelate(a, b *Frame, seqA, seqB []int, pivotsA, pivotsB map[int]int, cfg Config) *Matrix {
	cfg = cfg.withDefaults()
	m := NewMatrix("sequence", a.Index, b.Index, a.NumClusters, b.NumClusters)
	if len(seqA) == 0 || len(seqB) == 0 {
		return m
	}
	// Encode both sequences into a shared symbol space: pivots map to
	// their relation id; unknowns get frame-disjoint symbols so they can
	// never spuriously match each other during alignment.
	const (
		baseA = 1_000_000
		baseB = 2_000_000
	)
	encA := make([]int, len(seqA))
	for i, c := range seqA {
		if r, ok := pivotsA[c]; ok {
			encA[i] = r
		} else {
			encA[i] = baseA + c
		}
	}
	encB := make([]int, len(seqB))
	for i, c := range seqB {
		if r, ok := pivotsB[c]; ok {
			encB[i] = r
		} else {
			encB[i] = baseB + c
		}
	}
	ra, rb, _ := align.Pairwise(encA, encB, align.DefaultScoring())
	counts := make([]float64, a.NumClusters+1)
	for t := range ra {
		sa, sb := ra[t], rb[t]
		if sa >= baseA && sa < baseB {
			ca := sa - baseA
			counts[ca]++
			if sb >= baseB {
				m.P[ca][sb-baseB]++
			}
		}
	}
	for i := 1; i <= a.NumClusters; i++ {
		if counts[i] == 0 {
			continue
		}
		for j := 1; j <= b.NumClusters; j++ {
			m.P[i][j] /= counts[i]
		}
	}
	m.Threshold(cfg.MinCorrelation)
	return m
}

// consensusOf returns the consensus execution sequence of a frame from its
// star alignment.
func consensusOf(al *align.Alignment) []int { return al.Consensus() }

// StackTable summarises, per call-stack reference, which clusters of each
// frame contain bursts pointing at it — the paper's Table 1. Keys are
// references present in either frame.
func StackTable(a, b *Frame) map[trace.CallstackRef][2][]int {
	out := map[trace.CallstackRef][2][]int{}
	collect := func(f *Frame, side int) {
		for id := 1; id <= f.NumClusters; id++ {
			ci := f.Clusters[id]
			if ci == nil {
				continue
			}
			for st := range ci.Stacks {
				e := out[st]
				e[side] = append(e[side], id)
				out[st] = e
			}
		}
	}
	collect(a, 0)
	collect(b, 1)
	for st, e := range out {
		sort.Ints(e[0])
		sort.Ints(e[1])
		out[st] = e
	}
	return out
}
