package core

import (
	"context"
	"fmt"

	"perftrack/internal/align"
	"perftrack/internal/metrics"
)

// This file is the evaluate half of the streaming split. A SeqTracker
// holds a growing frame sequence and re-evaluates it after every
// appended window, producing a Result bit-exact with running
// BuildFrames + Track over the whole sequence — while only paying for
// what actually changed:
//
//   - cross-series normalisation ranges are maintained incrementally
//     (Range.Extend is a commutative min/max, so the running ranges
//     equal the batch ranges exactly); frames are renormalised only
//     when a new window actually widens a range ("epoch" bump);
//   - per-frame machinery (star alignment, consensus, SPMD matrices)
//     depends only on labels/trace, which are immutable after sealing,
//     so it is computed once per frame, ever;
//   - pair correlations depend on normalised coordinates, so they are
//     cached per (from,to) pair and invalidated on epoch bumps;
//   - the degraded-collapse rule (markCollapsed) is monotone as windows
//     append — maxClusters only grows — so recomputing it from scratch
//     each close matches the batch marking.
//
// Only the relation chaining and diagnostics are rebuilt every close;
// both are cheap relative to one window's clustering.
type SeqTracker struct {
	cfg Config
	tk  *Tracker

	frames []*Frame
	// tcoords holds each frame's rank-scaled, log-transformed metric
	// coordinates (normalizeSeries pass 1), flat-strided, immutable.
	tcoords [][]float64
	// intrinsic degraded state as sealed, before the collapse rule.
	intrinsicDegraded []bool
	intrinsicReason   []string

	ranges []metrics.Range
	// epoch counts range widenings; normEpoch[i] is the epoch frame i's
	// Norm and Clusters were last filled at.
	epoch     int
	normEpoch []int

	haveEval  []bool
	aligns    []*align.Alignment
	consensus [][]int
	spmdM     []*Matrix
	spmdPairs [][][2]int

	pairCache map[[2]int]*PairResult
}

// NewSeqTracker prepares an incremental tracker for a stream session.
func NewSeqTracker(cfg Config) (*SeqTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &SeqTracker{
		cfg:       cfg,
		tk:        NewTracker(cfg),
		ranges:    make([]metrics.Range, len(cfg.Metrics)),
		epoch:     1,
		pairCache: map[[2]int]*PairResult{},
	}
	for d := range s.ranges {
		s.ranges[d] = metrics.EmptyRange()
	}
	return s, nil
}

// Len returns the number of appended frames.
func (s *SeqTracker) Len() int { return len(s.frames) }

// Frames exposes the appended sequence (shared, do not mutate).
func (s *SeqTracker) Frames() []*Frame { return s.frames }

// Epoch returns the current normalisation epoch; it advances only when
// a window widened a metric range (forcing a series renormalisation).
func (s *SeqTracker) Epoch() int { return s.epoch }

// Append files one sealed frame into the sequence. The frame's index
// must equal Len() — windows arrive in order.
func (s *SeqTracker) Append(f *Frame) error {
	if f.Index != len(s.frames) {
		return fmt.Errorf("core: appended frame index %d, want %d", f.Index, len(s.frames))
	}
	dims := len(s.cfg.Metrics)
	flat := make([]float64, len(f.Points)*dims)
	grown := false
	for i, p := range f.Points {
		q := transformSpaceInto(flat[i*dims:(i+1)*dims:(i+1)*dims], s.cfg.Metrics, p, float64(f.Ranks))
		for d, v := range q {
			before := s.ranges[d]
			s.ranges[d].Extend(v)
			if s.ranges[d] != before {
				grown = true
			}
		}
	}
	if grown {
		s.epoch++
		// Displacement/sequence evidence reads normalised coordinates;
		// every cached pair is stale once the ranges move.
		clear(s.pairCache)
	}
	s.frames = append(s.frames, f)
	s.tcoords = append(s.tcoords, flat)
	s.intrinsicDegraded = append(s.intrinsicDegraded, f.Degraded)
	s.intrinsicReason = append(s.intrinsicReason, f.DegradedReason)
	s.normEpoch = append(s.normEpoch, 0)
	s.haveEval = append(s.haveEval, false)
	s.aligns = append(s.aligns, nil)
	s.consensus = append(s.consensus, nil)
	s.spmdM = append(s.spmdM, nil)
	s.spmdPairs = append(s.spmdPairs, nil)
	return nil
}

// Evaluate re-runs the tracking pipeline over the appended sequence.
// The Result is bit-exact with BuildFrames+Track over the same sealed
// window traces. It remains valid until the next Append (a later
// renormalisation rewrites Frame.Norm and Clusters in place).
func (s *SeqTracker) Evaluate(ctx context.Context) (*Result, error) {
	if len(s.frames) == 0 {
		return nil, fmt.Errorf("core: no frames to track")
	}
	cfg := s.tk.cfg

	// Effective degraded flags: intrinsic reasons are sticky, the
	// collapse rule is re-derived from the running max (monotone, so
	// marks only ever appear — exactly like batch markCollapsed).
	maxC := 0
	for _, f := range s.frames {
		if f.NumClusters > maxC {
			maxC = f.NumClusters
		}
	}
	for i, f := range s.frames {
		switch {
		case s.intrinsicDegraded[i]:
			f.Degraded, f.DegradedReason = true, s.intrinsicReason[i]
		case maxC >= 3 && f.NumClusters == 1:
			f.Degraded, f.DegradedReason = true, "clustering collapsed to a single object"
		default:
			f.Degraded, f.DegradedReason = false, ""
		}
	}
	if err := allDegraded(s.frames); err != nil {
		return nil, err
	}

	// Renormalise frames whose Norm predates the current ranges, and
	// refill their cluster summaries (centroids live in Norm space).
	dims := len(cfg.Metrics)
	for i, f := range s.frames {
		if s.normEpoch[i] == s.epoch {
			continue
		}
		flat := make([]float64, len(f.Points)*dims)
		f.Norm = make([][]float64, len(f.Points))
		tc := s.tcoords[i]
		for p := range f.Points {
			q := flat[p*dims : (p+1)*dims : (p+1)*dims]
			for d := 0; d < dims; d++ {
				q[d] = s.ranges[d].Normalize(tc[p*dims+d])
			}
			f.Norm[p] = q
		}
		f.fillClusterInfo(cfg)
		s.normEpoch[i] = s.epoch
	}

	// Per-frame machinery for newly-active frames; labels and traces are
	// immutable after sealing, so each frame is computed at most once.
	needAlign := !cfg.DisableSPMD || !cfg.DisableSequence
	var active, todo []int
	for i, f := range s.frames {
		if f.Degraded {
			continue
		}
		active = append(active, i)
		if !s.haveEval[i] {
			todo = append(todo, i)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("core: every frame is degraded")
	}
	runBounded(len(todo), func(k int) {
		i := todo[k]
		f := s.frames[i]
		if ctx.Err() != nil {
			return
		}
		if needAlign {
			s.aligns[i] = frameAlignment(f, cfg)
			s.consensus[i] = consensusOf(s.aligns[i])
		}
		if !cfg.DisableSPMD && ctx.Err() == nil {
			s.spmdM[i] = SPMDSimultaneity(f, s.aligns[i], cfg)
			s.spmdPairs[i] = SPMDPairs(s.spmdM[i], cfg)
		} else {
			s.spmdM[i] = NewMatrix("spmd", i, i, f.NumClusters, f.NumClusters)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, i := range todo {
		s.haveEval[i] = true
	}

	// Consecutive-active pairs: steady state computes exactly one new
	// pair (previous frame -> new frame); epoch bumps recompute all.
	res := &Result{Frames: s.frames, Pairs: make([]*PairResult, max(0, len(active)-1))}
	res.Diagnostics = gatherFrameDiagnostics(s.frames)
	type pairKey struct{ k, i, j int }
	var missing []pairKey
	for k := 0; k+1 < len(active); k++ {
		i, j := active[k], active[k+1]
		if pr, ok := s.pairCache[[2]int{i, j}]; ok {
			res.Pairs[k] = pr
		} else {
			missing = append(missing, pairKey{k, i, j})
		}
	}
	runBounded(len(missing), func(m int) {
		p := missing[m]
		res.Pairs[p.k] = s.tk.trackPair(ctx, s.frames[p.i], s.frames[p.j],
			s.spmdM[p.i], s.spmdM[p.j], s.spmdPairs[p.i], s.spmdPairs[p.j],
			s.consensus[p.i], s.consensus[p.j])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, p := range missing {
		s.pairCache[[2]int{p.i, p.j}] = res.Pairs[p.k]
	}
	for _, pr := range res.Pairs {
		if pr.To-pr.From > 1 {
			res.Diagnostics.FramesBridged += pr.To - pr.From - 1
			res.Diagnostics.Bridges = append(res.Diagnostics.Bridges, [2]int{pr.From, pr.To})
		}
	}
	s.tk.chain(res)
	return res, nil
}
