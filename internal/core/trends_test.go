package core

import (
	"math"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// trendFixture tracks two experiments where phase 1 loses 20% IPC and
// phase 2 stays put.
func trendFixture(t *testing.T) *Result {
	t.Helper()
	a := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.5, Instr: 4e6, Stack: stackR("b", 2)},
	}
	b := []phaseDef{
		{IPC: 0.8, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.5, Instr: 4e6, Stack: stackR("b", 2)},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 {
		t.Fatalf("fixture spanning = %d", res.SpanningCount)
	}
	return res
}

func TestTrendValues(t *testing.T) {
	res := trendFixture(t)
	reg := res.RegionByPhase(1)
	rt, err := res.Trend(reg.ID, metrics.IPC)
	if err != nil {
		t.Fatal(err)
	}
	means := rt.Means()
	if math.Abs(means[0]-1.0) > 1e-9 || math.Abs(means[1]-0.8) > 1e-9 {
		t.Errorf("IPC means = %v", means)
	}
	if math.Abs(rt.RelDeltaMean()-(-0.2)) > 1e-9 {
		t.Errorf("RelDeltaMean = %v, want -0.2", rt.RelDeltaMean())
	}
	if math.Abs(rt.MaxVariation()-0.2) > 1e-9 {
		t.Errorf("MaxVariation = %v, want 0.2", rt.MaxVariation())
	}
	// Totals: 16 bursts x IPC 1.0 per frame 0.
	totals := rt.Totals()
	if math.Abs(totals[0]-16) > 1e-9 {
		t.Errorf("totals = %v", totals)
	}
	if rt.Points[0].Count != 16 {
		t.Errorf("count = %d", rt.Points[0].Count)
	}
}

func TestTrendUnknownRegion(t *testing.T) {
	res := trendFixture(t)
	if _, err := res.Trend(99, metrics.IPC); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestTrendsAndTopTrends(t *testing.T) {
	res := trendFixture(t)
	all := res.Trends(metrics.IPC)
	if len(all) != len(res.Regions) {
		t.Errorf("Trends returned %d series for %d regions", len(all), len(res.Regions))
	}
	top := res.TopTrends(metrics.IPC, 0.03)
	if len(top) != 1 {
		t.Fatalf("TopTrends = %d series, want only the drifting one", len(top))
	}
	if got := res.RegionMajorityPhase(top[0].RegionID); got != 1 {
		t.Errorf("drifting region holds phase %d, want 1", got)
	}
	// Raising the bar excludes everything.
	if got := res.TopTrends(metrics.IPC, 0.5); len(got) != 0 {
		t.Errorf("high bar returned %d series", len(got))
	}
}

func TestTrendAbsentFrames(t *testing.T) {
	a := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.5, Instr: 4e6, Stack: stackR("gone", 9)},
	}
	b := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("a", 1)},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	reg := res.RegionByPhase(2)
	if reg == nil {
		t.Fatal("vanished region untracked")
	}
	rt, err := res.Trend(reg.ID, metrics.IPC)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Points[1].Present {
		t.Error("absent frame reported present")
	}
	if !math.IsNaN(rt.Means()[1]) {
		t.Error("absent frame mean should be NaN")
	}
	// RelDelta uses only present frames.
	if rt.RelDeltaMean() != 0 {
		t.Errorf("single-frame RelDelta = %v", rt.RelDeltaMean())
	}
}

func TestRegionMajorityPhase(t *testing.T) {
	res := trendFixture(t)
	for p := 1; p <= 2; p++ {
		reg := res.RegionByPhase(p)
		if reg == nil {
			t.Fatalf("phase %d missing", p)
		}
		if got := res.RegionMajorityPhase(reg.ID); got != p {
			t.Errorf("majority phase = %d, want %d", got, p)
		}
	}
	if res.RegionMajorityPhase(99) != 0 {
		t.Error("unknown region majority should be 0")
	}
	if res.RegionByPhase(42) != nil {
		t.Error("unknown phase should have no region")
	}
}

func TestPredictLinear(t *testing.T) {
	// Three frames with a linear IPC decline: prediction extrapolates it.
	mk := func(ipc float64) []phaseDef {
		return []phaseDef{
			{IPC: ipc, Instr: 1e7, Stack: stackR("a", 1)},
			{IPC: 0.5, Instr: 4e6, Stack: stackR("b", 2)},
		}
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, mk(1.0)),
		mkTrace("y", 4, 4, mk(0.9)),
		mkTrace("z", 4, 4, mk(0.8)))
	if err != nil {
		t.Fatal(err)
	}
	reg := res.RegionByPhase(1)
	pred, err := res.Predict(reg.ID, metrics.IPC, []float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Linear-0.7) > 1e-6 {
		t.Errorf("predicted IPC at x=4: %v, want 0.7", pred.Linear)
	}
	if pred.Model.R2 < 0.999 {
		t.Errorf("R2 = %v", pred.Model.R2)
	}
	// Mismatched xs length errors.
	if _, err := res.Predict(reg.ID, metrics.IPC, []float64{1}, 4); err == nil {
		t.Error("short xs accepted")
	}
	if _, err := res.Predict(99, metrics.IPC, []float64{1, 2, 3}, 4); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestPredictPowerLaw(t *testing.T) {
	// Instructions per rank halve as ranks double: the power model nails
	// the exponent -1.
	mk := func(ranks int) []phaseDef {
		return []phaseDef{
			{IPC: 1.0, Instr: 1e8 / float64(ranks), Stack: stackR("a", 1)},
			{IPC: 0.5, Instr: 4e7 / float64(ranks), Stack: stackR("b", 2)},
		}
	}
	res, err := buildAndTrack(testConfig(),
		mkTraceWithRanks("a", 4, mk(4)),
		mkTraceWithRanks("b", 8, mk(8)),
		mkTraceWithRanks("c", 16, mk(16)))
	if err != nil {
		t.Fatal(err)
	}
	reg := res.RegionByPhase(1)
	pred, err := res.Predict(reg.ID, metrics.Instructions, []float64{4, 8, 16}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.PowerModel.B+1) > 0.01 {
		t.Errorf("power exponent = %v, want -1", pred.PowerModel.B)
	}
	want := 1e8 / 32
	if math.Abs(pred.Power-want)/want > 0.02 {
		t.Errorf("power prediction = %v, want %v", pred.Power, want)
	}
}

func mkTraceWithRanks(label string, ranks int, phases []phaseDef) *trace.Trace {
	return mkTrace(label, ranks, 4, phases)
}
