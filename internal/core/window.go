package core

import (
	"fmt"
	"sort"

	"perftrack/internal/cluster"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// This file is the ingest half of the streaming split: a WindowBuilder
// accepts bursts one at a time, quarantining and filtering at arrival
// (the same classification buildFrame applies to a whole trace), and
// feeds an incremental cluster index when the configuration allows it.
// Sealing produces a Frame bit-exact with buildFrame over the same
// bursts laid out in the canonical window order.

// AcceptStatus classifies what happened to one appended burst.
type AcceptStatus int

const (
	// BurstAccepted: the burst is part of the window.
	BurstAccepted AcceptStatus = iota
	// BurstQuarantined: the burst was corrupt; the fault class is
	// recorded in the frame diagnostics.
	BurstQuarantined
	// BurstFiltered: the burst was dropped by the MinBurstDurationNS
	// filter (no diagnostic trail, matching the batch pipeline).
	BurstFiltered
)

// IncrementalEligible reports whether cfg can be served by the
// incremental cluster index. Data-driven eps/minPts estimation and the
// top-duration filter need the whole window at once; those
// configurations fall back to a seal-time batch clustering run.
func IncrementalEligible(cfg Config) bool {
	cfg = cfg.withDefaults()
	c := cfg.Cluster
	if c.Algorithm != "" && c.Algorithm != cluster.AlgoDBSCAN {
		return false
	}
	if c.Eps <= 0 || c.MinPts <= 0 {
		return false
	}
	if cfg.TopDurationFrac > 0 && cfg.TopDurationFrac < 1 {
		return false
	}
	return true
}

// WindowBuilder accumulates the bursts of one open window. It is not
// safe for concurrent use; the stream session serialises appends.
type WindowBuilder struct {
	cfg    Config
	meta   trace.Metadata
	bursts []trace.Burst

	quarantined map[string]int
	qcount      int

	// inc is the resident incremental index, nil when the configuration
	// is not eligible (then Seal runs the batch clustering).
	inc      *cluster.Incremental
	rowBuf   []float64
	coordBuf []float64
}

// NewWindowBuilder opens a window for one experiment/window label. The
// metadata's Label becomes the sealed frame's label and Ranks drives
// task-range quarantine and scale normalisation, exactly as a batch
// trace's metadata would.
func NewWindowBuilder(meta trace.Metadata, cfg Config) (*WindowBuilder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	wb := &WindowBuilder{cfg: cfg, meta: meta}
	if IncrementalEligible(cfg) {
		inc, err := cluster.NewIncremental(len(cfg.Metrics), cfg.Cluster)
		if err != nil {
			return nil, fmt.Errorf("core: incremental index: %w", err)
		}
		wb.inc = inc
		wb.rowBuf = make([]float64, len(cfg.Metrics))
		wb.coordBuf = make([]float64, len(cfg.Metrics))
	}
	return wb, nil
}

// Incremental reports whether the window maintains cluster labels
// incrementally (vs. a seal-time batch run).
func (wb *WindowBuilder) Incremental() bool { return wb.inc != nil }

// Len returns the number of accepted bursts in the open window.
func (wb *WindowBuilder) Len() int { return len(wb.bursts) }

// Accept classifies and files one burst. Quarantine and the
// minimum-duration filter run at arrival so the resident index only
// ever sees bursts the batch pipeline would cluster.
func (wb *WindowBuilder) Accept(b trace.Burst) (AcceptStatus, string) {
	if fault := burstFault(b, wb.meta.Ranks); fault != "" {
		if wb.quarantined == nil {
			wb.quarantined = map[string]int{}
		}
		wb.quarantined[fault]++
		wb.qcount++
		return BurstQuarantined, fault
	}
	if wb.cfg.MinBurstDurationNS > 0 && b.DurationNS < wb.cfg.MinBurstDurationNS {
		return BurstFiltered, ""
	}
	wb.bursts = append(wb.bursts, b)
	if wb.inc != nil {
		row := metrics.SpaceInto(wb.rowBuf, wb.cfg.Metrics, b.Sample())
		transformSpaceInto(wb.coordBuf, wb.cfg.Metrics, row, 1)
		wb.inc.Add(wb.coordBuf, float64(b.DurationNS))
	}
	return BurstAccepted, ""
}

// canonicalOrder returns the permutation that lays the accepted bursts
// out in the canonical window order: a stable sort by (Task, StartNS,
// Thread) over arrival order — the same ordering trace.SortByTaskTime
// produces. Ties across all three keys preserve arrival order; that
// tie-break is part of the streaming contract (the batch side of the
// differential gate builds its window traces the same way).
func (wb *WindowBuilder) canonicalOrder() []int {
	order := make([]int, len(wb.bursts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := wb.bursts[order[i]], wb.bursts[order[j]]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.Thread < b.Thread
	})
	return order
}

// Seal closes the window into a Frame, bit-exact with buildFrame over
// the canonical window trace. index is the frame's position in the
// stream sequence. The builder must not be used after Seal.
func (wb *WindowBuilder) Seal(index int) (*Frame, error) {
	order := wb.canonicalOrder()
	ft := &trace.Trace{Meta: wb.meta, Bursts: make([]trace.Burst, 0, len(wb.bursts))}
	for _, oi := range order {
		ft.Bursts = append(ft.Bursts, wb.bursts[oi])
	}
	if wb.inc == nil && wb.cfg.TopDurationFrac > 0 && wb.cfg.TopDurationFrac < 1 {
		ft = ft.FilterTopDuration(wb.cfg.TopDurationFrac)
	}
	f := &Frame{
		Index:         index,
		Label:         wb.meta.Label,
		Ranks:         wb.meta.Ranks,
		Trace:         ft,
		Quarantined:   wb.qcount,
		QuarantinedBy: wb.quarantined,
	}
	if len(ft.Bursts) == 0 {
		f.Degraded = true
		f.DegradedReason = "no bursts after quarantine and filtering"
		return f, nil
	}
	nb := len(ft.Bursts)
	dims := len(wb.cfg.Metrics)
	flat := make([]float64, nb*dims)
	coords := make([]float64, nb*dims)
	points := make([][]float64, nb)
	weights := make([]float64, nb)
	for i, b := range ft.Bursts {
		row := flat[i*dims : (i+1)*dims : (i+1)*dims]
		points[i] = metrics.SpaceInto(row, wb.cfg.Metrics, b.Sample())
		transformSpaceInto(coords[i*dims:(i+1)*dims], wb.cfg.Metrics, row, 1)
		weights[i] = float64(b.DurationNS)
	}
	var res *cluster.Result
	var err error
	if wb.inc != nil {
		// The index holds points in arrival order; order maps canonical
		// position -> arrival position, which is exactly Seal's contract.
		res, err = wb.inc.Seal(order)
	} else {
		res, err = cluster.RunFlat(coords, dims, weights, wb.cfg.Cluster)
	}
	if err != nil {
		return nil, err
	}
	f.Points = points
	f.Labels = res.Labels
	f.NumClusters = res.NumClusters
	if res.NumClusters == 0 {
		f.Degraded = true
		f.DegradedReason = "clustering found no objects"
	}
	return f, nil
}
