package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// Metamorphic properties of the full pipeline (frames → clustering →
// tracking), driven by the seeded planted-phase generator in
// internal/oracle. The generator's phases are far apart in performance
// space while its jitter is ±1%, so every property below must hold
// exactly — any failure is a real ordering/indexing bug, not noise.

// TestOracleKnownTruthRecovery: frames built from traces with planted
// phase annotations must recover the planted partition; the paper's
// validation score (ARI over tracked regions vs. ground-truth phases)
// must be near-perfect on this easy, well-separated data.
func TestOracleKnownTruthRecovery(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		phases := 3 + int(seed%3)
		tr := oracle.GenTraces(seed, "truth", 8, 4, phases)
		res, err := buildAndTrack(testConfig(), tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		vs := res.Validate()
		if vs.Annotated == 0 {
			t.Fatalf("seed %d: no annotated bursts scored", seed)
		}
		if vs.ARI < 0.95 {
			t.Errorf("seed %d (%d phases): planted truth recovered with ARI %v, want >= 0.95",
				seed, phases, vs.ARI)
		}
	}
}

// scaleCounters returns a deep copy of the trace with both hardware
// counters multiplied by f. With f a power of two, IPC
// (instructions/cycles) is bit-identical in the copy while the
// instructions axis is rigidly shifted in log space.
func scaleCounters(t *trace.Trace, f float64) *trace.Trace {
	out := t.Clone()
	for i := range out.Bursts {
		out.Bursts[i].Counters[metrics.CtrInstructions] *= f
		out.Bursts[i].Counters[metrics.CtrCycles] *= f
	}
	return out
}

// relationsOf flattens the per-pair relations for comparison.
func relationsOf(res *Result) [][]Relation {
	out := make([][]Relation, len(res.Pairs))
	for i, p := range res.Pairs {
		out[i] = p.Relations
	}
	return out
}

// TestOracleAxisScalingInvariance: multiplying both counters of every
// burst by 4 leaves IPC untouched and shifts log(instructions) by a
// constant, which the per-axis min–max normalisation removes. Cluster
// labels and tracking relations must be unchanged. (The planted phases
// are ≫ eps apart in normalised space, so the ≤1-ulp wobble the log
// transform can introduce cannot flip any neighbourhood.)
func TestOracleAxisScalingInvariance(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		t1 := oracle.GenTraces(seed, "a", 6, 3, 3)
		t2 := oracle.GenTraces(seed+100, "b", 6, 3, 3)
		base, err := buildAndTrack(testConfig(), t1, t2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scaled, err := buildAndTrack(testConfig(), scaleCounters(t1, 4), scaleCounters(t2, 4))
		if err != nil {
			t.Fatalf("seed %d (scaled): %v", seed, err)
		}
		for fi := range base.Frames {
			if !reflect.DeepEqual(base.Frames[fi].Labels, scaled.Frames[fi].Labels) {
				t.Errorf("seed %d frame %d: labels changed under ×4 counter scaling", seed, fi)
			}
		}
		if !reflect.DeepEqual(relationsOf(base), relationsOf(scaled)) {
			t.Errorf("seed %d: tracking relations changed under ×4 counter scaling:\n%v\nvs\n%v",
				seed, relationsOf(base), relationsOf(scaled))
		}
	}
}

// TestOracleReciprocity: the combiner searches reciprocally (A→B and
// B→A), so tracking the two-frame sequence in reverse order must yield
// the mirrored relation set.
func TestOracleReciprocity(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		t1 := oracle.GenTraces(seed, "a", 6, 3, 3)
		t2 := oracle.GenTraces(seed+100, "b", 6, 3, 3)
		fwd, err := buildAndTrack(testConfig(), t1, t2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rev, err := buildAndTrack(testConfig(), t2, t1)
		if err != nil {
			t.Fatalf("seed %d (reversed): %v", seed, err)
		}
		if len(fwd.Pairs) != 1 || len(rev.Pairs) != 1 {
			t.Fatalf("seed %d: expected exactly one pair, got %d and %d",
				seed, len(fwd.Pairs), len(rev.Pairs))
		}
		mirrored := make([]Relation, len(rev.Pairs[0].Relations))
		for i, r := range rev.Pairs[0].Relations {
			mirrored[i] = Relation{A: r.B, B: r.A}
		}
		if !sameRelationSet(fwd.Pairs[0].Relations, mirrored) {
			t.Errorf("seed %d: relations not reciprocal:\nA→B: %v\nB→A mirrored: %v",
				seed, fwd.Pairs[0].Relations, mirrored)
		}
	}
}

// sameRelationSet compares two relation lists ignoring order.
func sameRelationSet(a, b []Relation) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, ra := range a {
		for j, rb := range b {
			if !used[j] && reflect.DeepEqual(ra, rb) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// TestOracleBurstPermutationInvariance: the order bursts appear in the
// trace file must not matter. Labels are compared through the
// (task, start-time) burst identity because frames preserve their input
// trace's burst order; relations are compared directly (cluster
// numbering is canonical — by decreasing weight — hence order-free).
func TestOracleBurstPermutationInvariance(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		t1 := oracle.GenTraces(seed, "a", 6, 3, 3)
		base, err := buildAndTrack(testConfig(), t1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		shuf := t1.Clone()
		rng := rand.New(rand.NewPCG(seed, 0x5ffe))
		rng.Shuffle(len(shuf.Bursts), func(i, j int) {
			shuf.Bursts[i], shuf.Bursts[j] = shuf.Bursts[j], shuf.Bursts[i]
		})
		perm, err := buildAndTrack(testConfig(), shuf)
		if err != nil {
			t.Fatalf("seed %d (shuffled): %v", seed, err)
		}

		type burstID struct {
			task  int
			start int64
		}
		labelsByID := func(f *Frame) map[burstID]int {
			m := make(map[burstID]int, len(f.Labels))
			for i, b := range f.Trace.Bursts {
				m[burstID{b.Task, b.StartNS}] = f.Labels[i]
			}
			return m
		}
		for fi := range base.Frames {
			bm, pm := labelsByID(base.Frames[fi]), labelsByID(perm.Frames[fi])
			if !reflect.DeepEqual(bm, pm) {
				t.Errorf("seed %d frame %d: labels changed under burst permutation", seed, fi)
			}
		}
		if !reflect.DeepEqual(relationsOf(base), relationsOf(perm)) {
			t.Errorf("seed %d: relations changed under burst permutation", seed)
		}
	}
}
