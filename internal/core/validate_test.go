package core

import (
	"math"
	"testing"
)

func TestValidatePerfectTracking(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	score := res.Validate()
	if score.Annotated != 64 { // 2 frames x 4 ranks x 4 iters x 2 phases
		t.Errorf("annotated = %d", score.Annotated)
	}
	if score.Purity != 1 {
		t.Errorf("purity = %v, want 1", score.Purity)
	}
	if math.Abs(score.ARI-1) > 1e-9 {
		t.Errorf("ARI = %v, want 1", score.ARI)
	}
}

func TestValidateBimodalGrouping(t *testing.T) {
	// A rank-bimodal phase grouped into one region is still a correct
	// recovery of the ground truth: one region per phase.
	base := simplePhases()
	split := []phaseDef{
		base[0],
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2), PerRank: func(r int) (float64, float64) {
			if r%2 == 0 {
				return 0.75, 4e6
			}
			return 0.45, 4e6
		}},
	}
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 8, 4, base),
		mkTrace("y", 8, 4, split))
	if err != nil {
		t.Fatal(err)
	}
	score := res.Validate()
	if score.Purity < 0.99 || score.ARI < 0.99 {
		t.Errorf("bimodal grouping score = %+v, want ~perfect", score)
	}
}

func TestValidateDetectsConfusion(t *testing.T) {
	// Force a wrong result by disabling every disambiguating evaluator on
	// the swap scenario: the validation score must expose the confusion.
	a := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2)},
	}
	b := []phaseDef{
		{IPC: 0.6, Instr: 4e6, Stack: stackR("a", 1)},
		{IPC: 1.2, Instr: 1e7, Stack: stackR("b", 2)},
	}
	cfg := testConfig()
	cfg.DisableCallstack = true
	cfg.DisableSequence = true
	cfg.DisableSPMD = true
	res, err := buildAndTrack(cfg,
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	good, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, a),
		mkTrace("y", 4, 4, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Validate().ARI >= good.Validate().ARI {
		t.Errorf("displacement-only ARI %v not worse than full %v on the swap scenario",
			res.Validate().ARI, good.Validate().ARI)
	}
}

func TestValidateNoAnnotations(t *testing.T) {
	tr := mkTrace("x", 4, 4, simplePhases())
	for i := range tr.Bursts {
		tr.Bursts[i].Phase = 0
	}
	res, err := buildAndTrack(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	score := res.Validate()
	if score.Annotated != 0 || score.Purity != 0 || score.ARI != 0 {
		t.Errorf("unannotated score = %+v, want zeros", score)
	}
}
