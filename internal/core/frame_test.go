package core

import (
	"math"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

func TestTransformSpace(t *testing.T) {
	ms := []metrics.Metric{metrics.IPC, metrics.Instructions}
	got := transformSpace(ms, []float64{1.5, 1e6}, 4)
	if got[0] != 1.5 {
		t.Errorf("IPC transformed: %v", got[0])
	}
	// Instructions: x ranks, then log10.
	want := math.Log10(4e6)
	if math.Abs(got[1]-want) > 1e-12 {
		t.Errorf("instructions transform = %v, want %v", got[1], want)
	}
	// Zero ranks behaves like 1.
	got = transformSpace(ms, []float64{1, 100}, 0)
	if got[1] != 2 {
		t.Errorf("rank default: %v", got[1])
	}
	// Non-positive values are clamped, not NaN.
	got = transformSpace(ms, []float64{1, 0}, 1)
	if math.IsNaN(got[1]) || math.IsInf(got[1], 0) {
		t.Errorf("zero instructions transform = %v", got[1])
	}
}

func TestBuildFramesBasic(t *testing.T) {
	phases := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.5, Instr: 4e6, Stack: stackR("b", 2)},
	}
	tr := mkTrace("x", 4, 5, phases)
	frames, err := BuildFrames([]*trace.Trace{tr}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]
	if f.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", f.NumClusters)
	}
	if len(f.Points) != 40 || len(f.Norm) != 40 || len(f.Labels) != 40 {
		t.Errorf("frame sizes: %d %d %d", len(f.Points), len(f.Norm), len(f.Labels))
	}
	// Cluster 1 is the heavier phase (1e7 instr at IPC 1.0 = 1e7 ns per
	// burst vs 8e6 ns).
	c1 := f.Cluster(1)
	if c1 == nil || c1.Size != 20 {
		t.Fatalf("cluster 1 = %+v", c1)
	}
	if len(c1.Stacks) != 1 {
		t.Errorf("cluster 1 stacks = %v", c1.Stacks)
	}
	if f.Cluster(0) != nil || f.Cluster(99) != nil {
		t.Error("out-of-range Cluster() should be nil")
	}
}

func TestBuildFramesEmptyInput(t *testing.T) {
	if _, err := BuildFrames(nil, testConfig()); err == nil {
		t.Error("no traces accepted")
	}
	empty := &trace.Trace{Meta: trace.Metadata{Label: "e"}}
	if _, err := BuildFrames([]*trace.Trace{empty}, testConfig()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestBuildFramesMinDurationFilter(t *testing.T) {
	phases := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("big", 1)},
		{IPC: 1.0, Instr: 100, Stack: stackR("tiny", 2)}, // 100ns bursts
	}
	tr := mkTrace("x", 4, 5, phases)
	cfg := testConfig()
	cfg.MinBurstDurationNS = 1000
	frames, err := BuildFrames([]*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(frames[0].Points); got != 20 {
		t.Errorf("filtered frame has %d bursts, want 20", got)
	}
}

func TestBuildFramesTopDurationFilter(t *testing.T) {
	phases := []phaseDef{
		{IPC: 1.0, Instr: 1e7, Stack: stackR("big", 1)},
		{IPC: 1.0, Instr: 1e4, Stack: stackR("small", 2)},
	}
	tr := mkTrace("x", 4, 5, phases)
	cfg := testConfig()
	cfg.TopDurationFrac = 0.9
	frames, err := BuildFrames([]*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The small phase contributes ~0.1% of time: only long bursts stay.
	f := frames[0]
	if got := len(f.Points); got < 18 || got > 20 {
		t.Errorf("top-duration frame has %d bursts, want 18-20", got)
	}
	for _, b := range f.Trace.Bursts {
		if b.Phase != 1 {
			t.Errorf("short burst survived the top-duration cut: %+v", b)
		}
	}
}

func TestNormalizeSeriesRankWeighting(t *testing.T) {
	// Strong scaling: per-rank instructions halve at double ranks. After
	// rank weighting the normalised Y coordinates must coincide.
	mk := func(ranks int) *trace.Trace {
		return mkTrace("r", ranks, 4, []phaseDef{
			{IPC: 1.0, Instr: 1e8 / float64(ranks), Stack: stackR("a", 1)},
			{IPC: 0.5, Instr: 4e7 / float64(ranks), Stack: stackR("b", 2)},
		})
	}
	frames, err := BuildFrames([]*trace.Trace{mk(4), mk(8)}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c0 := frames[0].Cluster(1).Centroid
	c1 := frames[1].Cluster(1).Centroid
	if math.Abs(c0[1]-c1[1]) > 0.01 {
		t.Errorf("rank weighting failed: normalised Y %v vs %v", c0[1], c1[1])
	}
}

func TestNormalizeSeriesMinMax(t *testing.T) {
	phases := []phaseDef{
		{IPC: 0.5, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 1.5, Instr: 2e6, Stack: stackR("b", 2)},
	}
	tr := mkTrace("x", 4, 4, phases)
	frames, err := BuildFrames([]*trace.Trace{tr}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range frames[0].Norm {
		for d, v := range q {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("normalised value out of [0,1]: dim %d = %v", d, v)
			}
		}
	}
}

func TestClusteredDuration(t *testing.T) {
	phases := []phaseDef{{IPC: 1.0, Instr: 1e6, Stack: stackR("a", 1)}}
	tr := mkTrace("x", 2, 3, phases)
	frames, err := BuildFrames([]*trace.Trace{tr}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(6 * 1e6) // 6 bursts of 1e6 ns
	if got := frames[0].ClusteredDurationNS(); math.Abs(got-want) > 1 {
		t.Errorf("clustered duration = %v, want %v", got, want)
	}
}

func TestMetricOver(t *testing.T) {
	phases := []phaseDef{
		{IPC: 2.0, Instr: 1e6, Stack: stackR("a", 1)},
		{IPC: 0.5, Instr: 9e6, Stack: stackR("b", 2)},
	}
	tr := mkTrace("x", 2, 3, phases)
	frames, err := BuildFrames([]*trace.Trace{tr}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]
	// Identify which cluster holds phase "b" (heavier by duration: 18e6
	// cycles vs 0.5e6 -> cluster 1).
	mean, total := f.MetricOver(1, metrics.IPC)
	if math.Abs(mean-0.5) > 1e-9 {
		t.Errorf("cluster 1 IPC = %v, want 0.5", mean)
	}
	if math.Abs(total-6*0.5) > 1e-9 {
		t.Errorf("cluster 1 IPC total = %v", total)
	}
	mean, _ = f.MetricOver(2, metrics.IPC)
	if math.Abs(mean-2.0) > 1e-9 {
		t.Errorf("cluster 2 IPC = %v, want 2.0", mean)
	}
	// Unknown cluster: NaN mean.
	mean, _ = f.MetricOver(17, metrics.IPC)
	if !math.IsNaN(mean) {
		t.Errorf("missing cluster mean = %v, want NaN", mean)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	bad := []Config{
		{Metrics: []metrics.Metric{{Name: "broken"}}},
		{MinCorrelation: 1.5},
		{SPMDThreshold: -0.1},
		{SequenceThreshold: 2},
		{TopDurationFrac: -1},
		{MinBurstDurationNS: -5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// BuildFrames propagates the validation error.
	tr := mkTrace("x", 2, 2, simplePhases())
	if _, err := BuildFrames([]*trace.Trace{tr}, Config{MinCorrelation: 2}); err == nil {
		t.Error("BuildFrames accepted an invalid config")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if len(cfg.Metrics) != 2 {
		t.Errorf("default metrics = %v", cfg.Metrics)
	}
	if cfg.MinCorrelation != 0.05 {
		t.Errorf("default MinCorrelation = %v", cfg.MinCorrelation)
	}
	if cfg.SPMDThreshold <= 0 || cfg.SPMDTaskSample <= 0 || cfg.SequenceThreshold <= 0 {
		t.Errorf("defaults missing: %+v", cfg)
	}
}
