package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// QuarantineCounts is a fault-class → count map that marshals with its
// keys in sorted order, keeping JSON exports byte-deterministic (the
// service's content-addressed cache and the golden tests depend on it).
type QuarantineCounts map[string]int

// MarshalJSON writes the counts object with keys sorted bytewise.
func (qc QuarantineCounts) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(qc))
	for k := range qc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.WriteString(strconv.Itoa(qc[k]))
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Diagnostics accounts for everything the degraded-mode pipeline dropped
// or worked around while producing a Result: bursts quarantined during
// frame construction (with a per-fault-class breakdown), input lines the
// lenient decoder skipped, and frames that were marked degraded and
// bridged over by the tracker. A clean run reports all zeros; anything
// else means the result is a coarsened — but still sound — view of the
// study.
type Diagnostics struct {
	// BurstsQuarantined is the total number of bursts excluded from frame
	// construction because their values were corrupt.
	BurstsQuarantined int `json:"burstsQuarantined"`
	// QuarantinedBy breaks the quarantined bursts down by fault class
	// (e.g. "nan-counter", "inf-counter", "zero-counter",
	// "negative-duration", "task-out-of-range").
	QuarantinedBy QuarantineCounts `json:"quarantinedBy,omitempty"`
	// LinesSkipped is the number of malformed input lines the lenient
	// decoder quarantined before the traces reached the pipeline. It is
	// filled by callers that decode leniently (see AddDecode).
	LinesSkipped int `json:"linesSkipped,omitempty"`
	// FramesDegraded counts frames marked Degraded (empty after
	// quarantine/filtering, or collapsed by clustering).
	FramesDegraded int `json:"framesDegraded,omitempty"`
	// DegradedFrames lists the indices of the degraded frames.
	DegradedFrames []int `json:"degradedFrames,omitempty"`
	// FramesBridged counts degraded frames the tracker bridged across
	// (correlating the surrounding healthy frames directly).
	FramesBridged int `json:"framesBridged,omitempty"`
	// Bridges lists each bridging correlation as a [from, to] frame index
	// pair with to-from > 1.
	Bridges [][2]int `json:"bridges,omitempty"`
}

// Clean reports whether the pipeline ran without quarantining,
// skipping or bridging anything.
func (d Diagnostics) Clean() bool {
	return d.BurstsQuarantined == 0 && d.LinesSkipped == 0 &&
		d.FramesDegraded == 0 && d.FramesBridged == 0
}

// AddDecode folds the skipped-line count of a lenient trace decode into
// the diagnostics (call once per decoded trace).
func (d *Diagnostics) AddDecode(linesSkipped int) { d.LinesSkipped += linesSkipped }

// Summary renders a one-line human-readable account, or "clean" when
// nothing was dropped.
func (d Diagnostics) Summary() string {
	if d.Clean() {
		return "clean"
	}
	var parts []string
	if d.BurstsQuarantined > 0 {
		reasons := make([]string, 0, len(d.QuarantinedBy))
		for r := range d.QuarantinedBy {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		var rs []string
		for _, r := range reasons {
			rs = append(rs, fmt.Sprintf("%s:%d", r, d.QuarantinedBy[r]))
		}
		parts = append(parts, fmt.Sprintf("quarantined %d bursts (%s)",
			d.BurstsQuarantined, strings.Join(rs, ", ")))
	}
	if d.LinesSkipped > 0 {
		parts = append(parts, fmt.Sprintf("skipped %d malformed lines", d.LinesSkipped))
	}
	if d.FramesDegraded > 0 {
		parts = append(parts, fmt.Sprintf("%d degraded frame(s) %v", d.FramesDegraded, d.DegradedFrames))
	}
	if d.FramesBridged > 0 {
		var bs []string
		for _, b := range d.Bridges {
			bs = append(bs, fmt.Sprintf("%d→%d", b[0], b[1]))
		}
		parts = append(parts, fmt.Sprintf("bridged %d frame(s) (%s)",
			d.FramesBridged, strings.Join(bs, ", ")))
	}
	return strings.Join(parts, "; ")
}

// gatherFrameDiagnostics aggregates the per-frame quarantine and
// degradation bookkeeping into result-level diagnostics.
func gatherFrameDiagnostics(frames []*Frame) Diagnostics {
	var d Diagnostics
	for _, f := range frames {
		if f.Quarantined > 0 {
			d.BurstsQuarantined += f.Quarantined
			if d.QuarantinedBy == nil {
				d.QuarantinedBy = map[string]int{}
			}
			for r, n := range f.QuarantinedBy {
				d.QuarantinedBy[r] += n
			}
		}
		if f.Degraded {
			d.FramesDegraded++
			d.DegradedFrames = append(d.DegradedFrames, f.Index)
		}
	}
	return d
}
