package core

import (
	"strings"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix("test", 0, 1, 3, 2)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 0.5)
	if m.At(1, 2) != 0.5 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	// Out-of-range access is safe.
	m.Set(0, 1, 9)
	m.Set(4, 1, 9)
	m.Set(1, 3, 9)
	if m.At(0, 1) != 0 || m.At(4, 1) != 0 || m.At(1, 3) != 0 {
		t.Error("out-of-range cells leaked")
	}
}

func TestMatrixThreshold(t *testing.T) {
	m := NewMatrix("t", 0, 1, 2, 2)
	m.Set(1, 1, 0.04)
	m.Set(1, 2, 0.06)
	m.Threshold(0.05)
	if m.At(1, 1) != 0 {
		t.Error("below-threshold cell survived")
	}
	if m.At(1, 2) != 0.06 {
		t.Error("above-threshold cell removed")
	}
}

func TestMatrixNormalizeRows(t *testing.T) {
	m := NewMatrix("t", 0, 1, 2, 2)
	m.Set(1, 1, 2)
	m.Set(1, 2, 6)
	m.NormalizeRows()
	if m.At(1, 1) != 0.25 || m.At(1, 2) != 0.75 {
		t.Errorf("normalised row = %v %v", m.At(1, 1), m.At(1, 2))
	}
	// An all-zero row stays zero.
	if m.At(2, 1) != 0 {
		t.Error("zero row changed")
	}
}

func TestMatrixRowArgmax(t *testing.T) {
	m := NewMatrix("t", 0, 1, 2, 3)
	m.Set(1, 1, 0.2)
	m.Set(1, 3, 0.7)
	j, v := m.RowArgmax(1)
	if j != 3 || v != 0.7 {
		t.Errorf("argmax = %d, %v", j, v)
	}
	j, v = m.RowArgmax(2)
	if j != 0 || v != 0 {
		t.Errorf("empty row argmax = %d, %v", j, v)
	}
	if j, _ := m.RowArgmax(99); j != 0 {
		t.Error("out-of-range argmax")
	}
}

func TestMatrixNonZero(t *testing.T) {
	m := NewMatrix("t", 0, 1, 2, 2)
	m.Set(1, 2, 0.3)
	m.Set(2, 1, 0.9)
	cells := m.NonZero()
	if len(cells) != 2 {
		t.Fatalf("cells = %v", cells)
	}
	if cells[0] != (Cell{Row: 1, Col: 2, Value: 0.3}) {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[1] != (Cell{Row: 2, Col: 1, Value: 0.9}) {
		t.Errorf("cell 1 = %+v", cells[1])
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix("displacement", 0, 1, 2, 2)
	m.Set(1, 1, 1)
	m.Set(2, 2, 0.65)
	s := m.String()
	for _, want := range []string{"displacement", "A1", "B2", "100%", "65%"} {
		if !strings.Contains(s, want) {
			t.Errorf("matrix string missing %q:\n%s", want, s)
		}
	}
	// Zero cells render as dots.
	if !strings.Contains(s, ".") {
		t.Error("zero cells should render as dots")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	if !uf.union(0, 1) {
		t.Error("first union should report a merge")
	}
	if uf.union(1, 0) {
		t.Error("repeated union should report no merge")
	}
	uf.union(2, 3)
	uf.union(0, 3)
	if uf.find(1) != uf.find(2) {
		t.Error("transitive union broken")
	}
	if uf.find(4) == uf.find(0) {
		t.Error("separate sets merged")
	}
	groups := uf.groups()
	if len(groups) != 3 { // {0,1,2,3}, {4}, {5}
		t.Errorf("groups = %v", groups)
	}
	for _, members := range groups {
		for i := 1; i < len(members); i++ {
			if members[i] < members[i-1] {
				t.Error("group members not sorted")
			}
		}
	}
}
