package core

// Ground-truth validation: simulated traces carry the phase annotation of
// every burst (never consumed by the analysis itself), so the quality of a
// tracking result can be scored against the known truth. Two standard
// clustering-agreement measures are provided over the whole sequence:
// weighted purity and the adjusted Rand index. Real traces without
// annotations simply score 0 coverage of annotated bursts.

// ValidationScore summarises how well the tracked regions recover the
// ground-truth phases.
type ValidationScore struct {
	// Purity is the duration-unweighted fraction of annotated bursts
	// whose tracked region's majority phase matches their own annotation.
	Purity float64
	// ARI is the adjusted Rand index between the region partition and the
	// phase partition of all annotated bursts (1 = identical partitions,
	// ~0 = random agreement).
	ARI float64
	// Annotated is the number of bursts that carried a ground-truth phase
	// and a tracked region.
	Annotated int
}

// Validate scores the result against the simulator's phase annotations.
func (r *Result) Validate() ValidationScore {
	// Collect (regionID, phase) for every clustered, annotated burst.
	type key struct{ region, phase int }
	cont := map[key]int{}     // contingency table
	regTotal := map[int]int{} // per-region totals
	phaseTotal := map[int]int{}
	n := 0
	for fi, f := range r.Frames {
		labels := r.RegionLabels(fi)
		for i, reg := range labels {
			if reg == 0 {
				continue
			}
			phase := f.Trace.Bursts[i].Phase
			if phase <= 0 {
				continue
			}
			cont[key{reg, phase}]++
			regTotal[reg]++
			phaseTotal[phase]++
			n++
		}
	}
	if n == 0 {
		return ValidationScore{}
	}
	// Purity: for every region, its best-matching phase.
	var pure int
	best := map[int]int{}
	for k, c := range cont {
		if c > best[k.region] {
			best[k.region] = c
		}
	}
	for _, c := range best {
		pure += c
	}

	// Adjusted Rand index.
	comb2 := func(v int) float64 { return float64(v) * float64(v-1) / 2 }
	var sumCells, sumReg, sumPhase float64
	for _, c := range cont {
		sumCells += comb2(c)
	}
	for _, c := range regTotal {
		sumReg += comb2(c)
	}
	for _, c := range phaseTotal {
		sumPhase += comb2(c)
	}
	total := comb2(n)
	expected := sumReg * sumPhase / total
	maxIdx := (sumReg + sumPhase) / 2
	ari := 0.0
	if maxIdx != expected {
		ari = (sumCells - expected) / (maxIdx - expected)
	}
	return ValidationScore{
		Purity:    float64(pure) / float64(n),
		ARI:       ari,
		Annotated: n,
	}
}
