package core

import (
	"encoding/json"
	"fmt"
	"io"

	"perftrack/internal/metrics"
)

// This file provides a stable JSON export of tracking results so
// downstream tooling (dashboards, notebooks) can consume them without
// linking the library.

// ExportFrame is the serialised form of one frame.
type ExportFrame struct {
	Index          int             `json:"index"`
	Label          string          `json:"label"`
	Ranks          int             `json:"ranks"`
	Bursts         int             `json:"bursts"`
	Quarantined    int             `json:"quarantined,omitempty"`
	Degraded       bool            `json:"degraded,omitempty"`
	DegradedReason string          `json:"degradedReason,omitempty"`
	Clusters       []ExportCluster `json:"clusters"`
}

// ExportCluster is the serialised form of one object.
type ExportCluster struct {
	ID         int       `json:"id"`
	Size       int       `json:"size"`
	DurationNS float64   `json:"durationNs"`
	Centroid   []float64 `json:"centroid"`
	Region     int       `json:"region"`
}

// ExportRegion is the serialised form of one tracked region.
type ExportRegion struct {
	ID         int                  `json:"id"`
	Spanning   bool                 `json:"spanning"`
	DurationNS float64              `json:"durationNs"`
	Members    [][]int              `json:"members"`
	Trends     map[string][]float64 `json:"trends"`
}

// ExportRelation is the serialised form of one pairwise relation.
type ExportRelation struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	A    []int `json:"a"`
	B    []int `json:"b"`
}

// Export is the top-level JSON document.
type Export struct {
	Frames      []ExportFrame    `json:"frames"`
	Regions     []ExportRegion   `json:"regions"`
	Relations   []ExportRelation `json:"relations"`
	OptimalK    int              `json:"optimalK"`
	Spanning    int              `json:"trackedRegions"`
	Coverage    float64          `json:"coverage"`
	Diagnostics Diagnostics      `json:"diagnostics"`
}

// Export converts the result into its serialisable form, including the
// mean trend of every given metric for every region. NaNs (absent frames)
// are encoded as nulls by using pointer-free sentinel -1 replaced by
// omitted values; to keep the schema simple absent frames carry 0 and the
// members list tells presence.
func (r *Result) Export(ms []metrics.Metric) *Export {
	out := &Export{
		OptimalK:    r.OptimalK,
		Spanning:    r.SpanningCount,
		Coverage:    r.Coverage,
		Diagnostics: r.Diagnostics,
	}
	for fi, f := range r.Frames {
		ef := ExportFrame{
			Index: f.Index, Label: f.Label, Ranks: f.Ranks, Bursts: len(f.Labels),
			Quarantined: f.Quarantined, Degraded: f.Degraded, DegradedReason: f.DegradedReason,
		}
		for _, ci := range f.Clusters[1:] {
			if ci == nil {
				continue
			}
			ef.Clusters = append(ef.Clusters, ExportCluster{
				ID:         ci.ID,
				Size:       ci.Size,
				DurationNS: ci.TotalDurationNS,
				Centroid:   ci.RawCentroid,
				Region:     r.RegionOf(fi, ci.ID),
			})
		}
		out.Frames = append(out.Frames, ef)
	}
	for _, tr := range r.Regions {
		er := ExportRegion{
			ID:         tr.ID,
			Spanning:   tr.Spanning,
			DurationNS: tr.TotalDurationNS,
			Members:    tr.Members,
			Trends:     map[string][]float64{},
		}
		for _, m := range ms {
			rt, err := r.Trend(tr.ID, m)
			if err != nil {
				continue
			}
			vals := make([]float64, len(rt.Points))
			for i, p := range rt.Points {
				if p.Present {
					vals[i] = p.Mean
				}
			}
			er.Trends[m.Name] = vals
		}
		out.Regions = append(out.Regions, er)
	}
	for _, pr := range r.Pairs {
		for _, rel := range pr.Relations {
			out.Relations = append(out.Relations, ExportRelation{
				From: pr.From, To: pr.To, A: rel.A, B: rel.B,
			})
		}
	}
	return out
}

// WriteJSON writes the export document, indented, to w.
func (r *Result) WriteJSON(w io.Writer, ms []metrics.Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Export(ms)); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}
