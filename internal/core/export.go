package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"perftrack/internal/metrics"
)

// This file provides a stable JSON export of tracking results so
// downstream tooling (dashboards, notebooks) can consume them without
// linking the library.

// ExportFrame is the serialised form of one frame.
type ExportFrame struct {
	Index          int             `json:"index"`
	Label          string          `json:"label"`
	Ranks          int             `json:"ranks"`
	Bursts         int             `json:"bursts"`
	Quarantined    int             `json:"quarantined,omitempty"`
	Degraded       bool            `json:"degraded,omitempty"`
	DegradedReason string          `json:"degradedReason,omitempty"`
	Clusters       []ExportCluster `json:"clusters"`
}

// ExportCluster is the serialised form of one object.
type ExportCluster struct {
	ID         int       `json:"id"`
	Size       int       `json:"size"`
	DurationNS float64   `json:"durationNs"`
	Centroid   []float64 `json:"centroid"`
	Region     int       `json:"region"`
}

// OrderedTrends is a metric-name → per-frame-means map that marshals
// with its keys in sorted order. encoding/json already sorts string map
// keys, but byte-determinism of the export is load-bearing — it is what
// the content-addressed result cache and the golden tests key on — so
// the ordering is guaranteed here rather than inherited from a library
// implementation detail.
type OrderedTrends map[string][]float64

// MarshalJSON writes the trends object with keys sorted bytewise.
func (ot OrderedTrends) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(ot))
	for k := range ot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(ot[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// ExportRegion is the serialised form of one tracked region.
type ExportRegion struct {
	ID         int           `json:"id"`
	Spanning   bool          `json:"spanning"`
	DurationNS float64       `json:"durationNs"`
	Members    [][]int       `json:"members"`
	Trends     OrderedTrends `json:"trends"`
}

// ExportRelation is the serialised form of one pairwise relation.
type ExportRelation struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	A    []int `json:"a"`
	B    []int `json:"b"`
}

// Export is the top-level JSON document.
type Export struct {
	Frames      []ExportFrame    `json:"frames"`
	Regions     []ExportRegion   `json:"regions"`
	Relations   []ExportRelation `json:"relations"`
	OptimalK    int              `json:"optimalK"`
	Spanning    int              `json:"trackedRegions"`
	Coverage    float64          `json:"coverage"`
	Diagnostics Diagnostics      `json:"diagnostics"`
}

// Export converts the result into its serialisable form, including the
// mean trend of every given metric for every region. NaNs (absent frames)
// are encoded as nulls by using pointer-free sentinel -1 replaced by
// omitted values; to keep the schema simple absent frames carry 0 and the
// members list tells presence.
func (r *Result) Export(ms []metrics.Metric) *Export {
	out := &Export{
		OptimalK:    r.OptimalK,
		Spanning:    r.SpanningCount,
		Coverage:    r.Coverage,
		Diagnostics: r.Diagnostics,
	}
	for fi, f := range r.Frames {
		ef := ExportFrame{
			Index: f.Index, Label: f.Label, Ranks: f.Ranks, Bursts: len(f.Labels),
			Quarantined: f.Quarantined, Degraded: f.Degraded, DegradedReason: f.DegradedReason,
		}
		for _, ci := range f.Clusters[1:] {
			if ci == nil {
				continue
			}
			ef.Clusters = append(ef.Clusters, ExportCluster{
				ID:         ci.ID,
				Size:       ci.Size,
				DurationNS: ci.TotalDurationNS,
				Centroid:   ci.RawCentroid,
				Region:     r.RegionOf(fi, ci.ID),
			})
		}
		out.Frames = append(out.Frames, ef)
	}
	for _, tr := range r.Regions {
		er := ExportRegion{
			ID:         tr.ID,
			Spanning:   tr.Spanning,
			DurationNS: tr.TotalDurationNS,
			Members:    tr.Members,
			Trends:     OrderedTrends{},
		}
		for _, m := range ms {
			rt, err := r.Trend(tr.ID, m)
			if err != nil {
				continue
			}
			vals := make([]float64, len(rt.Points))
			for i, p := range rt.Points {
				if p.Present {
					vals[i] = p.Mean
				}
			}
			er.Trends[m.Name] = vals
		}
		out.Regions = append(out.Regions, er)
	}
	for _, pr := range r.Pairs {
		for _, rel := range pr.Relations {
			out.Relations = append(out.Relations, ExportRelation{
				From: pr.From, To: pr.To, A: rel.A, B: rel.B,
			})
		}
	}
	return out
}

// WriteJSON writes the export document, indented, to w.
func (r *Result) WriteJSON(w io.Writer, ms []metrics.Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Export(ms)); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}
