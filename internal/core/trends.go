package core

import (
	"fmt"
	"math"
	"sort"

	"perftrack/internal/metrics"
	"perftrack/internal/stats"
)

// TrendPoint is the aggregate of one metric over one tracked region in one
// frame.
type TrendPoint struct {
	// Mean is the duration-weighted mean over every member burst —
	// "considering every independent instance rather than simple
	// averages" happens earlier, at clustering; here the instances of one
	// behaviour are summarised.
	Mean float64
	// Total is the plain sum over member bursts.
	Total float64
	// Count is the number of member bursts.
	Count int
	// Present reports whether the region exists in the frame at all.
	Present bool
}

// RegionTrend is the evolution of one metric for one tracked region along
// the frame sequence — the series behind the paper's Figures 7, 10, 11
// and 12.
type RegionTrend struct {
	RegionID int
	Metric   string
	Points   []TrendPoint
}

// Means returns the per-frame means (NaN where absent).
func (rt RegionTrend) Means() []float64 {
	out := make([]float64, len(rt.Points))
	for i, p := range rt.Points {
		if p.Present {
			out[i] = p.Mean
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Totals returns the per-frame totals (NaN where absent).
func (rt RegionTrend) Totals() []float64 {
	out := make([]float64, len(rt.Points))
	for i, p := range rt.Points {
		if p.Present {
			out[i] = p.Total
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// RelDeltaMean returns the relative change of the mean between the first
// and last frames where the region is present.
func (rt RegionTrend) RelDeltaMean() float64 {
	first, last := math.NaN(), math.NaN()
	for _, p := range rt.Points {
		if p.Present {
			if math.IsNaN(first) {
				first = p.Mean
			}
			last = p.Mean
		}
	}
	if math.IsNaN(first) || first == 0 {
		return 0
	}
	return (last - first) / first
}

// MaxVariation returns the maximum relative deviation of the mean from its
// first present value (the paper plots "only the regions with higher IPC
// variations, above 3%").
func (rt RegionTrend) MaxVariation() float64 {
	first := math.NaN()
	maxDev := 0.0
	for _, p := range rt.Points {
		if !p.Present {
			continue
		}
		if math.IsNaN(first) {
			first = p.Mean
			continue
		}
		if first != 0 {
			if dev := math.Abs(p.Mean-first) / math.Abs(first); dev > maxDev {
				maxDev = dev
			}
		}
	}
	return maxDev
}

// Trend computes the evolution of metric m for the tracked region with the
// given id.
func (r *Result) Trend(regionID int, m metrics.Metric) (RegionTrend, error) {
	tr := r.Region(regionID)
	if tr == nil {
		return RegionTrend{}, fmt.Errorf("core: no tracked region %d", regionID)
	}
	rt := RegionTrend{RegionID: regionID, Metric: m.Name, Points: make([]TrendPoint, len(r.Frames))}
	for fi, f := range r.Frames {
		members := tr.Members[fi]
		if len(members) == 0 {
			continue
		}
		in := make(map[int]bool, len(members))
		for _, c := range members {
			in[c] = true
		}
		var sw, swx, total float64
		count := 0
		for i, l := range f.Labels {
			if !in[l] {
				continue
			}
			b := f.Trace.Bursts[i]
			v := m.Eval(b.Sample())
			w := float64(b.DurationNS)
			if w <= 0 {
				w = 1
			}
			sw += w
			swx += v * w
			total += v
			count++
		}
		p := TrendPoint{Total: total, Count: count, Present: count > 0}
		if sw > 0 {
			p.Mean = swx / sw
		}
		rt.Points[fi] = p
	}
	return rt, nil
}

// Trends computes the metric evolution for every tracked region, spanning
// regions first (the tool's default report).
func (r *Result) Trends(m metrics.Metric) []RegionTrend {
	out := make([]RegionTrend, 0, len(r.Regions))
	for _, tr := range r.Regions {
		rt, err := r.Trend(tr.ID, m)
		if err == nil {
			out = append(out, rt)
		}
	}
	return out
}

// TopTrends returns the spanning-region trends whose maximum variation
// exceeds minVariation, ordered by decreasing variation — mirroring the
// paper's "for better readability, only the regions with higher IPC
// variations (above 3%) are depicted".
func (r *Result) TopTrends(m metrics.Metric, minVariation float64) []RegionTrend {
	var out []RegionTrend
	for _, tr := range r.Regions {
		if !tr.Spanning {
			continue
		}
		rt, err := r.Trend(tr.ID, m)
		if err != nil {
			continue
		}
		if rt.MaxVariation() >= minVariation {
			out = append(out, rt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MaxVariation() > out[j].MaxVariation() })
	return out
}

// RegionMajorityPhase returns the most frequent ground-truth phase
// annotation among all bursts of the region across every frame, or 0 when
// no annotations are present. The analysis pipeline never consumes phase
// annotations; this accessor exists for validation and for reports that
// need to connect tracked regions back to simulator phases.
func (r *Result) RegionMajorityPhase(regionID int) int {
	tr := r.Region(regionID)
	if tr == nil {
		return 0
	}
	counts := map[int]int{}
	for fi, f := range r.Frames {
		members := tr.Members[fi]
		if len(members) == 0 {
			continue
		}
		in := make(map[int]bool, len(members))
		for _, c := range members {
			in[c] = true
		}
		for i, l := range f.Labels {
			if in[l] && f.Trace.Bursts[i].Phase > 0 {
				counts[f.Trace.Bursts[i].Phase]++
			}
		}
	}
	best, bestN := 0, 0
	keys := make([]int, 0, len(counts))
	for p := range counts {
		keys = append(keys, p)
	}
	sort.Ints(keys)
	for _, p := range keys {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	return best
}

// RegionByPhase returns the tracked region whose majority phase annotation
// equals phase, or nil. Useful for tests that must identify regions
// independently of the duration-based numbering.
func (r *Result) RegionByPhase(phase int) *TrackedRegion {
	for _, tr := range r.Regions {
		if r.RegionMajorityPhase(tr.ID) == phase {
			return tr
		}
	}
	return nil
}

// Prediction extrapolates a region's metric trend to an unseen scenario —
// the paper's future-work extension ("build predictive models able to
// foresee the performance of experiments beyond the sample space").
type Prediction struct {
	RegionID int
	Metric   string
	// Model is the linear fit over (x, mean) pairs.
	Model stats.LinearFit
	// PowerModel is the log-linear alternative (valid for positive data).
	PowerModel stats.LogLinearFit
	// X is the extrapolation input, Linear/Power the two estimates.
	X      float64
	Linear float64
	Power  float64
}

// Predict fits the trend of metric m for region id against the per-frame
// explanatory variable xs (e.g. rank counts, problem sizes, block sizes)
// and extrapolates both a linear and a power-law model to x.
func (r *Result) Predict(regionID int, m metrics.Metric, xs []float64, x float64) (Prediction, error) {
	if len(xs) != len(r.Frames) {
		return Prediction{}, fmt.Errorf("core: got %d xs for %d frames", len(xs), len(r.Frames))
	}
	rt, err := r.Trend(regionID, m)
	if err != nil {
		return Prediction{}, err
	}
	var fx, fy []float64
	for i, p := range rt.Points {
		if p.Present {
			fx = append(fx, xs[i])
			fy = append(fy, p.Mean)
		}
	}
	lin, err := stats.FitLinear(fx, fy)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: region %d metric %s: %w", regionID, m.Name, err)
	}
	pred := Prediction{
		RegionID: regionID,
		Metric:   m.Name,
		Model:    lin,
		X:        x,
		Linear:   lin.Predict(x),
	}
	if pow, err := stats.FitLogLinear(fx, fy); err == nil {
		pred.PowerModel = pow
		pred.Power = pow.Predict(x)
	} else {
		pred.Power = math.NaN()
	}
	return pred, nil
}
