// Package core implements the paper's primary contribution: the object
// tracking algorithm that correlates equivalent computing regions across a
// sequence of performance "images" (frames), despite the performance
// variations that move, reshape, split or merge them.
//
// The pipeline is the one Section 2 and 3 of the paper describe:
//
//  1. Every experiment's trace is rendered as a frame: each CPU burst is a
//     point in a metric space (IPC × Instructions by default) and
//     density-based clustering groups similar bursts into objects.
//  2. Metric scales are normalised across the sequence so frames from
//     different configurations become comparable.
//  3. Four heuristic evaluators (displacements, SPMD simultaneity, call
//     stack references, execution sequence) produce correlation evidence
//     between objects of consecutive frames.
//  4. A combiner merges the evidence into relations, prunes and refines
//     them, and chains relations across the sequence into tracked regions
//     whose per-metric trends are then reported.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"perftrack/internal/cluster"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// Config parametrises the whole tracking pipeline.
type Config struct {
	// Metrics spans the performance space. Default: IPC × Instructions.
	Metrics []metrics.Metric
	// Cluster configures the per-frame DBSCAN run.
	Cluster cluster.Config
	// MinBurstDurationNS drops bursts shorter than this before clustering;
	// fine-grain bursts carry little signal and inflate the frames.
	MinBurstDurationNS int64
	// TopDurationFrac keeps only the longest bursts covering this fraction
	// of total time (0 or >=1 keeps all).
	TopDurationFrac float64
	// MinCorrelation is the outlier cut for evaluator matrices; cells
	// below it are neglected ("occurrences with a very small probability,
	// 5% by default, are neglected as outliers").
	MinCorrelation float64
	// SPMDThreshold is the minimum reciprocal co-occurrence probability
	// for the SPMD evaluator to declare two same-frame clusters
	// simultaneous.
	SPMDThreshold float64
	// SPMDTaskSample caps how many task sequences enter the multiple
	// alignment (0 = 32). Sampling keeps the star alignment cheap on
	// wide runs without biasing column structure.
	SPMDTaskSample int
	// SequenceThreshold is the minimum agreement for the execution
	// sequence evaluator to bind two clusters when splitting a wide
	// relation.
	SequenceThreshold float64
	// DisableSPMD, DisableCallstack, DisableSequence and
	// DisableDisplacement switch individual evaluators off (ablation
	// studies; the trackeval quality gate nerfs the tracker through these
	// to prove the gate actually bites).
	DisableSPMD         bool
	DisableCallstack    bool
	DisableSequence     bool
	DisableDisplacement bool
}

// Validate reports a descriptive error for unusable configurations; zero
// values are fine (they select defaults), only actively contradictory
// settings are rejected.
func (c Config) Validate() error {
	for i, m := range c.Metrics {
		if !m.Valid() {
			return fmt.Errorf("core: metric %d is invalid (missing name or Eval)", i)
		}
	}
	if c.MinCorrelation < 0 || c.MinCorrelation > 1 {
		return fmt.Errorf("core: MinCorrelation %v outside [0,1]", c.MinCorrelation)
	}
	if c.SPMDThreshold < 0 || c.SPMDThreshold > 1 {
		return fmt.Errorf("core: SPMDThreshold %v outside [0,1]", c.SPMDThreshold)
	}
	if c.SequenceThreshold < 0 || c.SequenceThreshold > 1 {
		return fmt.Errorf("core: SequenceThreshold %v outside [0,1]", c.SequenceThreshold)
	}
	if c.TopDurationFrac < 0 || c.TopDurationFrac > 1 {
		return fmt.Errorf("core: TopDurationFrac %v outside [0,1]", c.TopDurationFrac)
	}
	if c.MinBurstDurationNS < 0 {
		return fmt.Errorf("core: negative MinBurstDurationNS")
	}
	return nil
}

// withDefaults returns a copy with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if len(c.Metrics) == 0 {
		c.Metrics = metrics.DefaultSpace()
	}
	if c.MinCorrelation <= 0 {
		c.MinCorrelation = 0.05
	}
	if c.SPMDThreshold <= 0 {
		c.SPMDThreshold = 0.30
	}
	if c.SPMDTaskSample <= 0 {
		c.SPMDTaskSample = 32
	}
	if c.SequenceThreshold <= 0 {
		c.SequenceThreshold = 0.5
	}
	return c
}

// ClusterInfo summarises one object of a frame.
type ClusterInfo struct {
	// ID is the 1-based cluster identifier within its frame.
	ID int
	// Size is the number of bursts in the cluster.
	Size int
	// TotalDurationNS is the summed duration of the cluster's bursts.
	TotalDurationNS float64
	// Centroid is the cluster mean in the cross-series normalised space.
	Centroid []float64
	// RawCentroid is the cluster mean in raw metric units.
	RawCentroid []float64
	// Stacks counts the call-stack references of the cluster's bursts.
	Stacks map[trace.CallstackRef]int
}

// Frame is one image of the sequence: the clustered performance space of
// one experiment (or one time window of an experiment).
type Frame struct {
	// Index is the frame position in the sequence.
	Index int
	// Label names the experiment the frame renders.
	Label string
	// Ranks is the process count of the experiment (used by scale
	// normalisation).
	Ranks int
	// Trace holds the filtered bursts the frame was built from; element i
	// corresponds to Points[i], Norm[i] and Labels[i].
	Trace *trace.Trace
	// Points holds the raw metric coordinates of each burst.
	Points [][]float64
	// Norm holds the cross-series normalised coordinates (filled by
	// normalizeSeries; nil until then).
	Norm [][]float64
	// Labels assigns each burst its cluster (1-based; 0 is noise).
	Labels []int
	// NumClusters is the number of objects detected.
	NumClusters int
	// Clusters holds per-object summaries, indexed 1..NumClusters
	// (index 0 is nil).
	Clusters []*ClusterInfo
	// Quarantined is the number of bursts excluded from the frame because
	// their values were corrupt (non-finite counters, negative times, out
	// of range tasks); QuarantinedBy breaks them down by fault class.
	Quarantined   int
	QuarantinedBy map[string]int
	// Degraded marks a frame the pipeline could not render reliably:
	// empty after quarantine and filtering, all-noise, or collapsed to a
	// single cluster while the rest of the series resolves several. The
	// tracker bridges across degraded frames instead of aborting.
	Degraded bool
	// DegradedReason says why the frame was marked degraded.
	DegradedReason string
}

// Cluster returns the info of cluster id, or nil when out of range.
func (f *Frame) Cluster(id int) *ClusterInfo {
	if id <= 0 || id >= len(f.Clusters) {
		return nil
	}
	return f.Clusters[id]
}

// ClusteredDurationNS returns the summed duration of all clustered (non
// noise) bursts.
func (f *Frame) ClusteredDurationNS() float64 {
	var sum float64
	for _, ci := range f.Clusters[1:] {
		sum += ci.TotalDurationNS
	}
	return sum
}

// burstFault classifies a corrupt burst, returning "" for healthy ones.
// Corruption here means values no metric evaluation can make sense of:
// non-finite or negative counters, negative times, tasks outside the
// declared rank range, and dead counter reads (zero instructions or
// cycles — no real burst retires nothing).
func burstFault(b trace.Burst, ranks int) string {
	switch {
	case b.DurationNS < 0:
		return "negative-duration"
	case b.StartNS < 0:
		return "negative-start"
	case b.Task < 0:
		return "negative-task"
	case ranks > 0 && b.Task >= ranks:
		return "task-out-of-range"
	}
	for _, v := range b.Counters {
		if math.IsNaN(v) {
			return "nan-counter"
		}
		if math.IsInf(v, 0) {
			return "inf-counter"
		}
		if v < 0 {
			return "negative-counter"
		}
	}
	if b.Counters[metrics.CtrInstructions] == 0 || b.Counters[metrics.CtrCycles] == 0 {
		return "zero-counter"
	}
	return ""
}

// quarantineBursts splits corrupt bursts out of a trace. When the trace
// is clean it is returned as-is with a nil reason map, so the healthy
// path stays allocation-free.
func quarantineBursts(t *trace.Trace) (*trace.Trace, map[string]int) {
	var reasons map[string]int
	var out *trace.Trace
	for i, b := range t.Bursts {
		r := burstFault(b, t.Meta.Ranks)
		if r == "" {
			if out != nil {
				out.Bursts = append(out.Bursts, b)
			}
			continue
		}
		if out == nil {
			out = &trace.Trace{Meta: t.Meta}
			out.Bursts = append(out.Bursts, t.Bursts[:i]...)
			reasons = map[string]int{}
		}
		reasons[r]++
	}
	if out == nil {
		return t, nil
	}
	return out, reasons
}

// BuildFrames converts one trace per experiment into the frame sequence:
// it quarantines corrupt bursts, filters, evaluates the metric space,
// clusters every frame independently (the paper stresses this is "an
// independent, non supervised process" whose numbering differs frame to
// frame) and finally normalises scales across the series.
//
// Frames that come out unusable — no bursts after quarantine/filtering,
// no clusters, or a single-cluster collapse while the rest of the series
// resolves several objects — are marked Degraded rather than failing the
// build, so one bad experiment coarsens the study instead of killing it.
// Only a sequence in which every frame is degraded is an error.
func BuildFrames(traces []*trace.Trace, cfg Config) ([]*Frame, error) {
	return BuildFramesContext(context.Background(), traces, cfg)
}

// BuildFramesContext is BuildFrames with cancellation: the per-frame
// filtering, metric evaluation and clustering loops poll ctx, so a
// cancelled or timed-out caller stops the build mid-frame instead of
// paying for the whole sequence. The first error returned after a cancel
// is ctx.Err().
func BuildFramesContext(ctx context.Context, traces []*trace.Trace, cfg Config) ([]*Frame, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no traces to build frames from")
	}
	// Thread cancellation into the clustering inner loops. The config is
	// a per-call copy, so mutating it here leaks nowhere.
	if ctx.Done() != nil {
		cfg.Cluster.Interrupt = func() error { return ctx.Err() }
	}
	// Frames are independent until the cross-series normalisation, so
	// they are clustered concurrently — across a GOMAXPROCS-bounded
	// worker pool, not a goroutine per frame: wide studies (hundreds of
	// time windows) would otherwise run every frame's clustering at once
	// and thrash both scheduler and caches. Results are deterministic:
	// each frame's outcome depends only on its own trace.
	frames := make([]*Frame, len(traces))
	errs := make([]error, len(traces))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(traces) {
		workers = len(traces)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				f, err := buildFrame(ctx, i, traces[i], cfg)
				if err != nil {
					errs[i] = fmt.Errorf("core: frame %d (%s): %w", i, traces[i].Meta.Label, err)
					continue
				}
				frames[i] = f
			}
		}()
	}
	for i := range traces {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	markCollapsed(frames)
	if err := allDegraded(frames); err != nil {
		return nil, err
	}
	normalizeSeries(frames, cfg.Metrics)
	for _, f := range frames {
		f.fillClusterInfo(cfg)
	}
	return frames, nil
}

// markCollapsed flags single-cluster frames as degraded when the rest of
// the series resolves clearly more structure: the frame carries no
// trackable relations of its own, and bridging the neighbours preserves
// more information than forcing everything through one merged object.
// When the whole series is low-resolution (max < 3 clusters) nothing is
// marked — that is the study's genuine structure, not a collapse.
func markCollapsed(frames []*Frame) {
	maxC := 0
	for _, f := range frames {
		if f.NumClusters > maxC {
			maxC = f.NumClusters
		}
	}
	if maxC < 3 {
		return
	}
	for _, f := range frames {
		if !f.Degraded && f.NumClusters == 1 {
			f.Degraded = true
			f.DegradedReason = "clustering collapsed to a single object"
		}
	}
}

// allDegraded returns an error when no frame in the sequence is usable.
func allDegraded(frames []*Frame) error {
	for _, f := range frames {
		if !f.Degraded {
			return nil
		}
	}
	return fmt.Errorf("core: all %d frames are degraded (frame 0: %s)",
		len(frames), frames[0].DegradedReason)
}

func buildFrame(ctx context.Context, index int, t *trace.Trace, cfg Config) (*Frame, error) {
	ft, quarantined := quarantineBursts(t)
	qcount := 0
	for _, n := range quarantined {
		qcount += n
	}
	if cfg.MinBurstDurationNS > 0 {
		ft = ft.FilterMinDuration(cfg.MinBurstDurationNS)
	}
	if cfg.TopDurationFrac > 0 && cfg.TopDurationFrac < 1 {
		ft = ft.FilterTopDuration(cfg.TopDurationFrac)
	}
	f := &Frame{
		Index:         index,
		Label:         t.Meta.Label,
		Ranks:         t.Meta.Ranks,
		Trace:         ft,
		Quarantined:   qcount,
		QuarantinedBy: quarantined,
	}
	if len(ft.Bursts) == 0 {
		f.Degraded = true
		f.DegradedReason = "no bursts after quarantine and filtering"
		return f, nil
	}
	// One flat allocation backs all burst coordinates; Points rows are
	// full-capacity views into it, so the public [][]float64 shape
	// survives while the data stays contiguous for the clustering pass.
	nb := len(ft.Bursts)
	dims := len(cfg.Metrics)
	flat := make([]float64, nb*dims)
	coords := make([]float64, nb*dims)
	points := make([][]float64, nb)
	weights := make([]float64, nb)
	for i, b := range ft.Bursts {
		if i%8192 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := flat[i*dims : (i+1)*dims : (i+1)*dims]
		points[i] = metrics.SpaceInto(row, cfg.Metrics, b.Sample())
		transformSpaceInto(coords[i*dims:(i+1)*dims], cfg.Metrics, row, 1)
		weights[i] = float64(b.DurationNS)
	}
	res, err := cluster.RunFlat(coords, dims, weights, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	f.Points = points
	f.Labels = res.Labels
	f.NumClusters = res.NumClusters
	if res.NumClusters == 0 {
		f.Degraded = true
		f.DegradedReason = "clustering found no objects"
	}
	return f, nil
}

// transformSpace maps raw metric values into the space distances are
// measured in: LogScale metrics (instructions, misses) are log10
// transformed because they span orders of magnitude across experiments,
// and rank-scaling metrics are multiplied by ranks first.
func transformSpace(ms []metrics.Metric, p []float64, ranks float64) []float64 {
	return transformSpaceInto(make([]float64, len(p)), ms, p, ranks)
}

// transformSpaceInto is transformSpace writing into q (len(q) == len(p)),
// for callers that lay whole frames out in one flat allocation.
func transformSpaceInto(q []float64, ms []metrics.Metric, p []float64, ranks float64) []float64 {
	if ranks <= 0 {
		ranks = 1
	}
	for d, v := range p {
		if ms[d].ScalesWithRanks {
			v *= ranks
		}
		if ms[d].LogScale {
			if v < 1e-12 {
				v = 1e-12
			}
			v = math.Log10(v)
		}
		q[d] = v
	}
	return q
}

// normalizeSeries implements the paper's scale transformation (Section 2):
// "metrics that are correlated with the number of processes (e.g.
// Instructions) are weighted by the number of cores, while the scale for
// the rest (e.g. IPC) is adjusted to the minimum and maximum values seen
// along all experiments". The result lives in Frame.Norm, each dimension
// in [0,1] across the whole sequence.
func normalizeSeries(frames []*Frame, ms []metrics.Metric) {
	dims := len(ms)
	ranges := make([]metrics.Range, dims)
	for d := range ranges {
		ranges[d] = metrics.EmptyRange()
	}
	// First pass: rank-weighted, log-transformed values + global ranges.
	// Each frame's normalised coordinates share one flat backing array.
	for _, f := range frames {
		flat := make([]float64, len(f.Points)*dims)
		f.Norm = make([][]float64, len(f.Points))
		for i, p := range f.Points {
			q := transformSpaceInto(flat[i*dims:(i+1)*dims:(i+1)*dims], ms, p, float64(f.Ranks))
			for d, v := range q {
				ranges[d].Extend(v)
			}
			f.Norm[i] = q
		}
	}
	// Second pass: min-max over the series.
	for _, f := range frames {
		for _, q := range f.Norm {
			for d := range q {
				q[d] = ranges[d].Normalize(q[d])
			}
		}
	}
}

// fillClusterInfo computes per-cluster summaries after normalisation.
func (f *Frame) fillClusterInfo(cfg Config) {
	dims := len(cfg.Metrics)
	f.Clusters = make([]*ClusterInfo, f.NumClusters+1)
	for c := 1; c <= f.NumClusters; c++ {
		f.Clusters[c] = &ClusterInfo{
			ID:          c,
			Centroid:    make([]float64, dims),
			RawCentroid: make([]float64, dims),
			Stacks:      map[trace.CallstackRef]int{},
		}
	}
	for i, l := range f.Labels {
		if l <= 0 || l > f.NumClusters {
			continue
		}
		ci := f.Clusters[l]
		ci.Size++
		ci.TotalDurationNS += float64(f.Trace.Bursts[i].DurationNS)
		for d := 0; d < dims; d++ {
			ci.Centroid[d] += f.Norm[i][d]
			ci.RawCentroid[d] += f.Points[i][d]
		}
		if st := f.Trace.Bursts[i].Stack; !st.IsZero() {
			ci.Stacks[st]++
		}
	}
	for c := 1; c <= f.NumClusters; c++ {
		ci := f.Clusters[c]
		if ci.Size == 0 {
			continue
		}
		for d := 0; d < dims; d++ {
			ci.Centroid[d] /= float64(ci.Size)
			ci.RawCentroid[d] /= float64(ci.Size)
		}
	}
}

// MetricOver computes an aggregate of metric m over the bursts of cluster
// id: the duration-weighted mean and the plain total. Aggregating every
// individual instance (rather than trusting static profiles) is the point
// the paper makes about multi-modal variability.
func (f *Frame) MetricOver(id int, m metrics.Metric) (weightedMean, total float64) {
	var sw, swx float64
	for i, l := range f.Labels {
		if l != id {
			continue
		}
		b := f.Trace.Bursts[i]
		v := m.Eval(b.Sample())
		w := float64(b.DurationNS)
		if w <= 0 {
			w = 1
		}
		sw += w
		swx += v * w
		total += v
	}
	if sw == 0 {
		return math.NaN(), total
	}
	return swx / sw, total
}
