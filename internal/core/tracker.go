package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"perftrack/internal/align"
)

// Relation is one correspondence between consecutive frames: the clusters
// in A are held to be the same computing region(s) as the clusters in B.
// Wide relations (more than one cluster on a side) arise when the
// evaluators cannot distinguish nearby objects with the information
// available, so "the regions in doubt are grouped together".
type Relation struct {
	A, B []int
}

// Wide reports whether the relation groups several objects on either side.
func (r Relation) Wide() bool { return len(r.A) > 1 || len(r.B) > 1 }

// PairResult is the full diagnostic output of tracking one pair of
// consecutive frames.
type PairResult struct {
	// From and To are the frame indices of the pair.
	From, To int
	// DispAB and DispBA are the displacement matrices of both directions
	// (the search is reciprocal).
	DispAB, DispBA *Matrix
	// StackAB and StackBA are the call-stack correlation matrices of both
	// directions.
	StackAB, StackBA *Matrix
	// SPMDA and SPMDB are the simultaneity matrices of each frame.
	SPMDA, SPMDB *Matrix
	// Seq is the execution-sequence matrix computed with the pre-split
	// relations as pivots (nil when the evaluator is disabled or had no
	// pivots to work with).
	Seq *Matrix
	// Relations is the final set of correspondences for the pair.
	Relations []Relation
}

// TrackedRegion is one region followed along the whole frame sequence.
type TrackedRegion struct {
	// ID is the stable identifier after renaming (1-based, ordered by
	// decreasing total duration).
	ID int
	// Members lists, per frame index, the cluster ids that belong to the
	// region in that frame (empty when absent).
	Members [][]int
	// Spanning reports whether the region is present in every frame —
	// the paper's k tracked regions are the spanning ones.
	Spanning bool
	// TotalDurationNS sums the duration of all member clusters across all
	// frames.
	TotalDurationNS float64
}

// Result is the outcome of tracking a frame sequence.
type Result struct {
	// Frames is the input sequence (with normalised coordinates filled).
	Frames []*Frame
	// Pairs holds per-consecutive-pair diagnostics.
	Pairs []*PairResult
	// Regions lists all tracked regions, spanning first, by decreasing
	// total duration.
	Regions []*TrackedRegion
	// SpanningCount is the paper's k: regions present in every frame.
	SpanningCount int
	// OptimalK is the maximum number of trackable relations, bounded by
	// the image with the fewest objects (Section 3: "the optimal k is
	// bounded above by the image with the fewer number of objects
	// detected"). It is the coverage denominator of Table 2.
	OptimalK int
	// Coverage is SpanningCount / OptimalK. 1.0 denotes univocal
	// correspondences between all objects; lower values mean nearby
	// objects had to be grouped into wide relations.
	Coverage float64
	// Diagnostics accounts for quarantined bursts, skipped lines,
	// degraded frames and the bridges the tracker built across them.
	Diagnostics Diagnostics
}

// Tracker runs the combination algorithm of Section 3 over a sequence of
// frames.
type Tracker struct {
	cfg Config
}

// NewTracker returns a tracker with the given configuration (zero fields
// take defaults).
func NewTracker(cfg Config) *Tracker { return &Tracker{cfg: cfg.withDefaults()} }

// Track correlates the objects of every pair of consecutive healthy
// frames and chains the relations into tracked regions over the whole
// sequence. Degraded frames are bridged: the surrounding healthy frames
// are correlated directly (the displacement and sequence evaluators do
// not require adjacency, only comparable normalised spaces), so a corrupt
// or collapsed experiment coarsens the trend instead of aborting the
// study. Every bridge is recorded in Result.Diagnostics.
func (tk *Tracker) Track(frames []*Frame) (*Result, error) {
	return tk.TrackContext(context.Background(), frames)
}

// TrackContext is Track with cancellation: the per-frame alignment
// workers and per-pair correlation workers poll ctx between stages, so a
// cancelled or timed-out caller abandons the remaining evaluator work
// instead of computing matrices nobody will read. After a cancel the
// returned error is ctx.Err().
func (tk *Tracker) TrackContext(ctx context.Context, frames []*Frame) (*Result, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: no frames to track")
	}
	cfg := tk.cfg

	// The tracked sequence is the healthy frames; degraded ones stay in
	// Result.Frames (so indices and labels are preserved) but take no
	// part in correlation.
	var active []int
	for i, f := range frames {
		if !f.Degraded {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("core: every frame is degraded")
	}

	// Per-frame machinery shared by evaluators: star alignment of the
	// per-task sequences, its SPMD matrix, pairs and consensus sequence.
	aligns := make([]*align.Alignment, len(frames))
	spmdM := make([]*Matrix, len(frames))
	spmdPairs := make([][][2]int, len(frames))
	consensus := make([][]int, len(frames))
	needAlign := !cfg.DisableSPMD || !cfg.DisableSequence
	// Per-frame alignments are independent of each other; compute them
	// across a GOMAXPROCS-bounded worker pool (each slot is written by
	// exactly one worker, so the outcome is schedule-independent).
	for i, f := range frames {
		if f.Degraded {
			spmdM[i] = NewMatrix("spmd", i, i, f.NumClusters, f.NumClusters)
		}
	}
	runBounded(len(frames), func(i int) {
		f := frames[i]
		if f.Degraded {
			return
		}
		if ctx.Err() != nil {
			// Leave empty per-frame machinery; the cancel check
			// after the pool drains discards everything anyway.
			spmdM[i] = NewMatrix("spmd", i, i, f.NumClusters, f.NumClusters)
			return
		}
		if needAlign {
			aligns[i] = frameAlignment(f, cfg)
			consensus[i] = consensusOf(aligns[i])
		}
		if !cfg.DisableSPMD && ctx.Err() == nil {
			spmdM[i] = SPMDSimultaneity(f, aligns[i], cfg)
			spmdPairs[i] = SPMDPairs(spmdM[i], cfg)
		} else {
			spmdM[i] = NewMatrix("spmd", i, i, f.NumClusters, f.NumClusters)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Consecutive active pairs are likewise independent (the chain step
	// joins their relations afterwards).
	res := &Result{Frames: frames, Pairs: make([]*PairResult, max(0, len(active)-1))}
	res.Diagnostics = gatherFrameDiagnostics(frames)
	runBounded(max(0, len(active)-1), func(k int) {
		i, j := active[k], active[k+1]
		res.Pairs[k] = tk.trackPair(ctx, frames[i], frames[j],
			spmdM[i], spmdM[j], spmdPairs[i], spmdPairs[j],
			consensus[i], consensus[j])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, pr := range res.Pairs {
		if pr.To-pr.From > 1 {
			res.Diagnostics.FramesBridged += pr.To - pr.From - 1
			res.Diagnostics.Bridges = append(res.Diagnostics.Bridges, [2]int{pr.From, pr.To})
		}
	}
	tk.chain(res)
	return res, nil
}

// runBounded invokes fn(0..n-1), fanning out across at most GOMAXPROCS
// worker goroutines. fn instances must be independent (each writing only
// its own result slot).
func runBounded(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// trackPair runs the combination algorithm for one pair of frames:
// displacement links first, widened by SPMD simultaneity, vetoed by call
// stack disjointness, searched reciprocally, and finally refined by the
// execution-sequence evaluator that tries to split wide relations.
// Cancellation is polled between evaluator stages; a cancelled pair
// returns nil (the caller discards the whole result on ctx.Err()).
func (tk *Tracker) trackPair(ctx context.Context, a, b *Frame, spmdA, spmdB *Matrix, pairsA, pairsB [][2]int, seqA, seqB []int) *PairResult {
	cfg := tk.cfg
	pr := &PairResult{From: a.Index, To: b.Index}
	if ctx.Err() != nil {
		return nil
	}
	if cfg.DisableDisplacement {
		// Ablation: empty matrices yield no displacement links, leaving
		// the call-stack rescue, SPMD widening and sequence evaluators to
		// carry the correlation on their own.
		pr.DispAB = NewMatrix("displacement", a.Index, b.Index, a.NumClusters, b.NumClusters)
		pr.DispBA = NewMatrix("displacement", b.Index, a.Index, b.NumClusters, a.NumClusters)
	} else {
		pr.DispAB = Displacement(a, b, cfg)
		pr.DispBA = Displacement(b, a, cfg)
	}
	if ctx.Err() != nil {
		return nil
	}
	pr.StackAB = Callstack(a, b, cfg)
	pr.StackBA = Callstack(b, a, cfg)
	pr.SPMDA, pr.SPMDB = spmdA, spmdB

	vetoCross := func(i, j int) bool {
		return !cfg.DisableCallstack && stacksDisjoint(a, b, i, j)
	}

	// Node ids: 0..a.NumClusters-1 for A clusters, then B clusters.
	nA, nB := a.NumClusters, b.NumClusters
	node := func(frameB bool, id int) int {
		if frameB {
			return nA + id - 1
		}
		return id - 1
	}
	uf := newUnionFind(nA + nB)
	crossLinkedA := make([]bool, nA+1)
	crossLinkedB := make([]bool, nB+1)
	crossLink := func(i, j int) {
		uf.union(node(false, i), node(true, j))
		crossLinkedA[i] = true
		crossLinkedB[j] = true
	}

	// 1) Displacement links, reciprocal, vetoed by call-stack
	// disjointness: "all related regions must share the same references
	// to the source code, so we discard those not having any in common".
	for _, c := range pr.DispAB.NonZero() {
		if !vetoCross(c.Row, c.Col) {
			crossLink(c.Row, c.Col)
		}
	}
	for _, c := range pr.DispBA.NonZero() {
		if !vetoCross(c.Col, c.Row) { // row is B cluster, col is A cluster
			crossLink(c.Col, c.Row)
		}
	}

	// 2) SPMD widening: same-frame simultaneous clusters are the same
	// code, provided the call stacks do not contradict it.
	if !cfg.DisableSPMD {
		for _, p := range pairsA {
			if cfg.DisableCallstack || sharedStack(a, p[0], p[1]) || !hasStacks(a) {
				uf.union(node(false, p[0]), node(false, p[1]))
			}
		}
		for _, p := range pairsB {
			if cfg.DisableCallstack || sharedStack(b, p[0], p[1]) || !hasStacks(b) {
				uf.union(node(true, p[0]), node(true, p[1]))
			}
		}
	}

	// 3) Call-stack rescue: when the performance space moves so far that
	// nearest-neighbour classification finds nothing valid (e.g. NAS BT,
	// where the instruction counts grow an order of magnitude per class),
	// an unlinked cluster whose code references identify exactly one
	// counterpart — in both directions — is bound through them.
	if !cfg.DisableCallstack {
		for i := 1; i <= nA; i++ {
			if crossLinkedA[i] {
				continue
			}
			j := uniqueCandidate(pr.StackAB, i)
			if j == 0 || crossLinkedB[j] {
				continue
			}
			if uniqueCandidate(pr.StackBA, j) == i {
				crossLink(i, j)
			}
		}
	}

	// 4) Extract relations from the components.
	relations := relationsFrom(uf, nA, nB)

	// 5) Execution-sequence refinement: univocal relations serve as
	// pivots; wide relations are re-examined and split when the aligned
	// sequences disambiguate their members, and clusters still alone are
	// bound to the counterpart the aligned sequences place them opposite
	// to (the paper's Figure 5 inference). With no pivots at all the
	// alignment is purely positional, which is still sound because "the
	// sequence of computing bursts over time will preserve the same
	// chronological order" across experiments.
	if !cfg.DisableSequence {
		if ctx.Err() != nil {
			return nil
		}
		pivotsA, pivotsB := map[int]int{}, map[int]int{}
		relID := 0
		for _, r := range relations {
			if !r.Wide() && len(r.A) == 1 && len(r.B) == 1 {
				relID++
				pivotsA[r.A[0]] = relID
				pivotsB[r.B[0]] = relID
			}
		}
		pr.Seq = SequenceCorrelate(a, b, seqA, seqB, pivotsA, pivotsB, cfg)
		relations = tk.splitWide(a, b, relations, pr.Seq)
		relations = tk.bindLone(a, b, relations, pr.Seq)
	}

	sortRelations(relations)
	pr.Relations = relations
	return pr
}

// relationsFrom converts union-find components over the pair's nodes into
// Relations. Components living entirely in one frame become one-sided
// relations (an object that appeared or vanished).
func relationsFrom(uf *unionFind, nA, nB int) []Relation {
	var out []Relation
	for _, members := range uf.groups() {
		var r Relation
		for _, m := range members {
			if m < nA {
				r.A = append(r.A, m+1)
			} else {
				r.B = append(r.B, m-nA+1)
			}
		}
		sort.Ints(r.A)
		sort.Ints(r.B)
		out = append(out, r)
	}
	return out
}

func sortRelations(rels []Relation) {
	key := func(r Relation) int {
		if len(r.A) > 0 {
			return r.A[0]
		}
		if len(r.B) > 0 {
			return 1000 + r.B[0]
		}
		return 1 << 30
	}
	sort.Slice(rels, func(i, j int) bool { return key(rels[i]) < key(rels[j]) })
}

// splitWide attempts to break each wide relation into finer ones using the
// sequence matrix: members are re-linked only where the aligned execution
// sequences agree (and the call stacks do not contradict). A split is
// accepted only when every resulting component still holds members from
// both frames — otherwise the original grouping stands.
func (tk *Tracker) splitWide(a, b *Frame, relations []Relation, seq *Matrix) []Relation {
	cfg := tk.cfg
	var out []Relation
	for _, r := range relations {
		if !r.Wide() || len(r.A) == 0 || len(r.B) == 0 {
			out = append(out, r)
			continue
		}
		// Sub union-find over just this relation's members.
		idx := map[[2]int]int{} // (side, cluster) -> node
		var nodes [][2]int
		for _, i := range r.A {
			idx[[2]int{0, i}] = len(nodes)
			nodes = append(nodes, [2]int{0, i})
		}
		for _, j := range r.B {
			idx[[2]int{1, j}] = len(nodes)
			nodes = append(nodes, [2]int{1, j})
		}
		uf := newUnionFind(len(nodes))
		linked := false
		for _, i := range r.A {
			for _, j := range r.B {
				if seq.At(i, j) >= cfg.SequenceThreshold &&
					(cfg.DisableCallstack || !stacksDisjoint(a, b, i, j)) {
					uf.union(idx[[2]int{0, i}], idx[[2]int{1, j}])
					linked = true
				}
			}
		}
		if !linked {
			out = append(out, r)
			continue
		}
		// Examine the split.
		var subs []Relation
		ok := true
		for _, members := range uf.groups() {
			var s Relation
			for _, m := range members {
				n := nodes[m]
				if n[0] == 0 {
					s.A = append(s.A, n[1])
				} else {
					s.B = append(s.B, n[1])
				}
			}
			if len(s.A) == 0 || len(s.B) == 0 {
				ok = false
				break
			}
			sort.Ints(s.A)
			sort.Ints(s.B)
			subs = append(subs, s)
		}
		if ok && len(subs) > 1 {
			out = append(out, subs...)
		} else {
			out = append(out, r)
		}
	}
	return out
}

// uniqueCandidate returns the only non-zero column of row i, or 0 when the
// row has zero or several candidates.
func uniqueCandidate(m *Matrix, i int) int {
	found := 0
	for j := 1; j <= m.Cols(); j++ {
		if m.At(i, j) > 0 {
			if found != 0 {
				return 0
			}
			found = j
		}
	}
	return found
}

// bindLone merges one-sided relations (a cluster present in only one of
// the two frames) when the pivot-aligned execution sequences place an
// A-side orphan opposite a B-side orphan with sufficient agreement.
func (tk *Tracker) bindLone(a, b *Frame, relations []Relation, seq *Matrix) []Relation {
	cfg := tk.cfg
	var loneA, loneB, rest []Relation
	for _, r := range relations {
		switch {
		case len(r.B) == 0 && len(r.A) > 0:
			loneA = append(loneA, r)
		case len(r.A) == 0 && len(r.B) > 0:
			loneB = append(loneB, r)
		default:
			rest = append(rest, r)
		}
	}
	usedB := make([]bool, len(loneB))
	for _, ra := range loneA {
		bound := false
		for bi, rb := range loneB {
			if usedB[bi] || bound {
				continue
			}
			// Require sequence agreement between every A member and some
			// B member, without a call-stack contradiction.
			ok := true
			for _, i := range ra.A {
				matched := false
				for _, j := range rb.B {
					if seq.At(i, j) >= cfg.SequenceThreshold &&
						(cfg.DisableCallstack || !stacksDisjoint(a, b, i, j)) {
						matched = true
						break
					}
				}
				if !matched {
					ok = false
					break
				}
			}
			if ok {
				merged := Relation{
					A: append([]int(nil), ra.A...),
					B: append([]int(nil), rb.B...),
				}
				sort.Ints(merged.A)
				sort.Ints(merged.B)
				rest = append(rest, merged)
				usedB[bi] = true
				bound = true
			}
		}
		if !bound {
			rest = append(rest, ra)
		}
	}
	for bi, rb := range loneB {
		if !usedB[bi] {
			rest = append(rest, rb)
		}
	}
	return rest
}

// chain links the per-pair relations across the whole sequence into
// tracked regions, computes coverage and assigns stable identifiers.
func (tk *Tracker) chain(res *Result) {
	frames := res.Frames
	// Global node space: offset per frame.
	offset := make([]int, len(frames)+1)
	for i, f := range frames {
		offset[i+1] = offset[i] + f.NumClusters
	}
	total := offset[len(frames)]
	uf := newUnionFind(total)
	node := func(frame, id int) int { return offset[frame] + id - 1 }

	for _, pr := range res.Pairs {
		for _, r := range pr.Relations {
			// All members of a relation are the same region: union within
			// sides and across sides.
			var anchor = -1
			for _, i := range r.A {
				n := node(pr.From, i)
				if anchor < 0 {
					anchor = n
				} else {
					uf.union(anchor, n)
				}
			}
			for _, j := range r.B {
				n := node(pr.To, j)
				if anchor < 0 {
					anchor = n
				} else {
					uf.union(anchor, n)
				}
			}
		}
	}

	// Assemble regions.
	var regions []*TrackedRegion
	for _, members := range uf.groups() {
		tr := &TrackedRegion{Members: make([][]int, len(frames))}
		for _, m := range members {
			fi := sort.Search(len(offset), func(i int) bool { return offset[i] > m }) - 1
			cid := m - offset[fi] + 1
			tr.Members[fi] = append(tr.Members[fi], cid)
			if ci := frames[fi].Cluster(cid); ci != nil {
				tr.TotalDurationNS += ci.TotalDurationNS
			}
		}
		// Spanning means present in every healthy frame: degraded frames
		// cannot host any region, so they do not break spans.
		tr.Spanning = true
		for fi := range frames {
			sort.Ints(tr.Members[fi])
			if len(tr.Members[fi]) == 0 && !frames[fi].Degraded {
				tr.Spanning = false
			}
		}
		regions = append(regions, tr)
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Spanning != regions[j].Spanning {
			return regions[i].Spanning
		}
		if regions[i].TotalDurationNS != regions[j].TotalDurationNS {
			return regions[i].TotalDurationNS > regions[j].TotalDurationNS
		}
		return firstMember(regions[i]) < firstMember(regions[j])
	})
	for i, tr := range regions {
		tr.ID = i + 1
		if tr.Spanning {
			res.SpanningCount++
		}
	}
	res.Regions = regions

	// The optimal k is bounded by the healthy image with the fewest
	// objects; degraded frames are outside the tracked sequence.
	res.OptimalK = 0
	for _, f := range frames {
		if f.Degraded {
			continue
		}
		if res.OptimalK == 0 || f.NumClusters < res.OptimalK {
			res.OptimalK = f.NumClusters
		}
	}
	if res.OptimalK > 0 {
		res.Coverage = float64(res.SpanningCount) / float64(res.OptimalK)
	}
}

func firstMember(tr *TrackedRegion) int {
	for fi, ms := range tr.Members {
		if len(ms) > 0 {
			return fi*1_000_000 + ms[0]
		}
	}
	return 1 << 30
}

// RegionOf returns the tracked-region id that cluster id of frame fi
// belongs to, or 0 when untracked.
func (r *Result) RegionOf(fi, clusterID int) int {
	for _, tr := range r.Regions {
		if fi < len(tr.Members) {
			for _, c := range tr.Members[fi] {
				if c == clusterID {
					return tr.ID
				}
			}
		}
	}
	return 0
}

// RegionLabels returns, for frame fi, a per-burst label slice where every
// burst carries its tracked-region id (0 for noise/untracked). This is the
// renaming step of Section 3.5: "all objects identifiers renamed, so that
// all the equivalent regions keep the same numbering and color along the
// whole sequence of images".
func (r *Result) RegionLabels(fi int) []int {
	f := r.Frames[fi]
	remap := make([]int, f.NumClusters+1)
	for _, tr := range r.Regions {
		for _, c := range tr.Members[fi] {
			remap[c] = tr.ID
		}
	}
	out := make([]int, len(f.Labels))
	for i, l := range f.Labels {
		if l > 0 && l <= f.NumClusters {
			out[i] = remap[l]
		}
	}
	return out
}

// Region returns the tracked region with the given id, or nil.
func (r *Result) Region(id int) *TrackedRegion {
	for _, tr := range r.Regions {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}
