package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sample(instr, cycles float64) Sample {
	var s Sample
	s.Counters[CtrInstructions] = instr
	s.Counters[CtrCycles] = cycles
	return s
}

func TestCounterString(t *testing.T) {
	cases := map[Counter]string{
		CtrInstructions: "PAPI_TOT_INS",
		CtrCycles:       "PAPI_TOT_CYC",
		CtrL1DMisses:    "PAPI_L1_DCM",
		CtrL2DMisses:    "PAPI_L2_DCM",
		CtrTLBMisses:    "PAPI_TLB_DM",
		CtrMemAccesses:  "PAPI_LST_INS",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Counter(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestCounterStringOutOfRange(t *testing.T) {
	if got := Counter(99).String(); got != "PAPI_UNKNOWN_99" {
		t.Errorf("out-of-range counter = %q", got)
	}
	if got := Counter(-1).String(); got != "PAPI_UNKNOWN_-1" {
		t.Errorf("negative counter = %q", got)
	}
}

func TestCounterByName(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		got, ok := CounterByName(c.String())
		if !ok || got != c {
			t.Errorf("CounterByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := CounterByName("PAPI_NOPE"); ok {
		t.Error("CounterByName accepted an unknown name")
	}
}

func TestCounterVectorAddScale(t *testing.T) {
	var a, b CounterVector
	a[CtrInstructions] = 10
	b[CtrInstructions] = 5
	b[CtrCycles] = 2
	a.Add(b)
	if a[CtrInstructions] != 15 || a[CtrCycles] != 2 {
		t.Errorf("Add result = %v", a)
	}
	s := a.Scale(2)
	if s[CtrInstructions] != 30 || s[CtrCycles] != 4 {
		t.Errorf("Scale result = %v", s)
	}
	// Scale must not mutate the receiver (value semantics).
	if a[CtrInstructions] != 15 {
		t.Errorf("Scale mutated the receiver: %v", a)
	}
}

func TestIPC(t *testing.T) {
	if got := IPC.Eval(sample(100, 50)); got != 2 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := IPC.Eval(sample(100, 0)); got != 0 {
		t.Errorf("IPC with zero cycles = %v, want 0", got)
	}
}

func TestInstructionsMetric(t *testing.T) {
	if got := Instructions.Eval(sample(12345, 1)); got != 12345 {
		t.Errorf("Instructions = %v", got)
	}
	if !Instructions.ScalesWithRanks {
		t.Error("Instructions must scale with ranks")
	}
	if IPC.ScalesWithRanks {
		t.Error("IPC must not scale with ranks")
	}
}

func TestDurationMS(t *testing.T) {
	s := Sample{DurationNS: 2_500_000}
	if got := DurationMS.Eval(s); got != 2.5 {
		t.Errorf("DurationMS = %v, want 2.5", got)
	}
}

func TestMissDensityMetrics(t *testing.T) {
	s := sample(2000, 1000)
	s.Counters[CtrL1DMisses] = 10
	s.Counters[CtrL2DMisses] = 4
	s.Counters[CtrTLBMisses] = 2
	if got := L1MissesPerKInstr.Eval(s); got != 5 {
		t.Errorf("L1MPKI = %v, want 5", got)
	}
	if got := L2MissesPerKInstr.Eval(s); got != 2 {
		t.Errorf("L2MPKI = %v, want 2", got)
	}
	if got := TLBMissesPerKInstr.Eval(s); got != 1 {
		t.Errorf("TLBMPKI = %v, want 1", got)
	}
}

func TestMissDensityZeroInstructions(t *testing.T) {
	var s Sample
	s.Counters[CtrL1DMisses] = 10
	if got := L1MissesPerKInstr.Eval(s); got != 0 {
		t.Errorf("L1MPKI with zero instructions = %v, want 0", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{
		"IPC", "Instructions", "Cycles", "DurationMS",
		"L1DMisses", "L2DMisses", "TLBMisses",
		"L1MPKI", "L2MPKI", "TLBMPKI",
	} {
		m, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) not found", name)
			continue
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
		if !m.Valid() {
			t.Errorf("ByName(%q) returned invalid metric", name)
		}
	}
	if _, ok := ByName("Bogus"); ok {
		t.Error("ByName accepted an unknown metric")
	}
}

func TestMetricValid(t *testing.T) {
	if (Metric{}).Valid() {
		t.Error("zero metric must be invalid")
	}
	if (Metric{Name: "x"}).Valid() {
		t.Error("metric without Eval must be invalid")
	}
}

func TestDefaultSpace(t *testing.T) {
	sp := DefaultSpace()
	if len(sp) != 2 || sp[0].Name != "IPC" || sp[1].Name != "Instructions" {
		t.Errorf("DefaultSpace = %v", sp)
	}
}

func TestSpace(t *testing.T) {
	s := sample(100, 50)
	got := Space([]Metric{IPC, Instructions}, s)
	if len(got) != 2 || got[0] != 2 || got[1] != 100 {
		t.Errorf("Space = %v", got)
	}
}

func TestRangeExtendContains(t *testing.T) {
	r := EmptyRange()
	if !r.Empty() {
		t.Fatal("EmptyRange not empty")
	}
	r.Extend(3)
	r.Extend(-1)
	if r.Empty() || r.Min != -1 || r.Max != 3 {
		t.Errorf("range after extend = %+v", r)
	}
	if !r.Contains(0) || r.Contains(4) || r.Contains(-2) {
		t.Error("Contains wrong")
	}
	if r.Width() != 4 {
		t.Errorf("Width = %v", r.Width())
	}
}

func TestRangeNormalize(t *testing.T) {
	r := Range{Min: 10, Max: 20}
	if got := r.Normalize(15); got != 0.5 {
		t.Errorf("Normalize(15) = %v", got)
	}
	if got := r.Normalize(10); got != 0 {
		t.Errorf("Normalize(min) = %v", got)
	}
	if got := r.Normalize(20); got != 1 {
		t.Errorf("Normalize(max) = %v", got)
	}
}

func TestRangeNormalizeDegenerate(t *testing.T) {
	r := Range{Min: 5, Max: 5}
	if got := r.Normalize(5); got != 0.5 {
		t.Errorf("degenerate Normalize = %v, want 0.5", got)
	}
	if got := r.Denormalize(0.7); got != 5 {
		t.Errorf("degenerate Denormalize = %v, want Min", got)
	}
}

func TestRangeRoundTripProperty(t *testing.T) {
	f := func(a, b, u float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if hi-lo < 1e-9 || hi-lo > 1e12 {
			return true
		}
		r := Range{Min: lo, Max: hi}
		u = math.Abs(math.Mod(u, 1))
		v := r.Denormalize(u)
		back := r.Normalize(v)
		return math.Abs(back-u) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangesOf(t *testing.T) {
	pts := [][]float64{{1, 10}, {3, -2}, {2, 5}}
	rs := RangesOf(pts)
	if len(rs) != 2 {
		t.Fatalf("dims = %d", len(rs))
	}
	if rs[0].Min != 1 || rs[0].Max != 3 || rs[1].Min != -2 || rs[1].Max != 10 {
		t.Errorf("ranges = %+v", rs)
	}
	if RangesOf(nil) != nil {
		t.Error("RangesOf(nil) should be nil")
	}
}
