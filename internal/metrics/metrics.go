// Package metrics defines the performance-metric model used throughout
// perftrack: hardware counter vectors attached to CPU bursts, derived
// metrics (IPC, miss ratios, ...), and the scale transformations needed to
// compare metric values across experiments with different configurations.
//
// The tracking technique of the paper is metric-agnostic: any pair (or any
// number) of metrics can span the performance space in which code regions
// are clustered and tracked. This package provides the standard metrics the
// paper uses (Instructions Completed and IPC) plus the cache/TLB metrics of
// its case studies, and the hooks to define custom ones.
package metrics

import (
	"fmt"
	"math"
)

// Counter indexes one slot of a hardware counter vector. The set mirrors
// what the paper's case studies read through PAPI: instructions, cycles and
// the cache/TLB miss counters used in Figures 10-12.
type Counter int

const (
	// CtrInstructions is the number of completed instructions.
	CtrInstructions Counter = iota
	// CtrCycles is the number of core cycles the burst spent executing.
	CtrCycles
	// CtrL1DMisses is the number of L1 data cache misses.
	CtrL1DMisses
	// CtrL2DMisses is the number of L2 (last private level) data cache misses.
	CtrL2DMisses
	// CtrTLBMisses is the number of data TLB misses.
	CtrTLBMisses
	// CtrMemAccesses is the number of memory accesses (loads+stores).
	CtrMemAccesses

	// NumCounters is the size of a CounterVector.
	NumCounters
)

// counterNames maps Counter values to their canonical names, used by the
// trace codec and report generators.
var counterNames = [NumCounters]string{
	"PAPI_TOT_INS",
	"PAPI_TOT_CYC",
	"PAPI_L1_DCM",
	"PAPI_L2_DCM",
	"PAPI_TLB_DM",
	"PAPI_LST_INS",
}

// String returns the PAPI-style name of the counter.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("PAPI_UNKNOWN_%d", int(c))
	}
	return counterNames[c]
}

// CounterByName resolves a PAPI-style counter name. It returns -1 and false
// when the name is not known.
func CounterByName(name string) (Counter, bool) {
	for i, n := range counterNames {
		if n == name {
			return Counter(i), true
		}
	}
	return -1, false
}

// CounterVector holds one value per hardware counter. Values are stored as
// float64 because simulated and extrapolated counts need not be integral.
type CounterVector [NumCounters]float64

// Add accumulates o into v.
func (v *CounterVector) Add(o CounterVector) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies every slot by f and returns the result.
func (v CounterVector) Scale(f float64) CounterVector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Sample is the minimal per-burst information a Metric can be computed
// from. It decouples this package from the trace model.
type Sample struct {
	// DurationNS is the burst elapsed time in nanoseconds.
	DurationNS float64
	// Counters is the hardware counter vector read over the burst.
	Counters CounterVector
}

// Metric is a named scalar derived from a burst sample. Metrics describe
// one axis of the performance space in which bursts are clustered and
// tracked.
type Metric struct {
	// Name identifies the metric in reports, plots and trace headers.
	Name string
	// ScalesWithRanks marks metrics whose magnitude is inversely
	// proportional to the number of processes (e.g. instructions per rank
	// under strong scaling). The cross-experiment normalisation weights
	// such metrics by the rank count so frames become comparable
	// (paper, Section 2).
	ScalesWithRanks bool
	// LogScale hints plots to use a logarithmic axis.
	LogScale bool
	// Eval computes the metric value for one burst sample.
	Eval func(s Sample) float64
}

// Valid reports whether the metric is usable.
func (m Metric) Valid() bool { return m.Name != "" && m.Eval != nil }

// ratio returns num/den guarding against division by zero.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Standard metrics.
var (
	// IPC is instructions per cycle, the paper's default X axis: "IPC
	// measures how fast the work is done".
	IPC = Metric{
		Name: "IPC",
		Eval: func(s Sample) float64 {
			return ratio(s.Counters[CtrInstructions], s.Counters[CtrCycles])
		},
	}

	// Instructions is the completed instruction count, the paper's default
	// Y axis: "trends in Instructions Completed indicate regions with
	// different workloads".
	Instructions = Metric{
		Name:            "Instructions",
		ScalesWithRanks: true,
		LogScale:        true,
		Eval: func(s Sample) float64 {
			return s.Counters[CtrInstructions]
		},
	}

	// Cycles is the elapsed cycle count of the burst.
	Cycles = Metric{
		Name:            "Cycles",
		ScalesWithRanks: true,
		LogScale:        true,
		Eval: func(s Sample) float64 {
			return s.Counters[CtrCycles]
		},
	}

	// DurationMS is the burst duration in milliseconds.
	DurationMS = Metric{
		Name:            "DurationMS",
		ScalesWithRanks: true,
		Eval: func(s Sample) float64 {
			return s.DurationNS / 1e6
		},
	}

	// L1DMisses is the raw L1 data cache miss count.
	L1DMisses = Metric{
		Name:            "L1DMisses",
		ScalesWithRanks: true,
		LogScale:        true,
		Eval: func(s Sample) float64 {
			return s.Counters[CtrL1DMisses]
		},
	}

	// L2DMisses is the raw L2 data cache miss count.
	L2DMisses = Metric{
		Name:            "L2DMisses",
		ScalesWithRanks: true,
		LogScale:        true,
		Eval: func(s Sample) float64 {
			return s.Counters[CtrL2DMisses]
		},
	}

	// TLBMisses is the raw data TLB miss count.
	TLBMisses = Metric{
		Name:            "TLBMisses",
		ScalesWithRanks: true,
		LogScale:        true,
		Eval: func(s Sample) float64 {
			return s.Counters[CtrTLBMisses]
		},
	}

	// L1MissesPerKInstr is L1 data misses per thousand instructions, a
	// density metric independent of the burst size.
	L1MissesPerKInstr = Metric{
		Name: "L1MPKI",
		Eval: func(s Sample) float64 {
			return 1000 * ratio(s.Counters[CtrL1DMisses], s.Counters[CtrInstructions])
		},
	}

	// L2MissesPerKInstr is L2 data misses per thousand instructions.
	L2MissesPerKInstr = Metric{
		Name: "L2MPKI",
		Eval: func(s Sample) float64 {
			return 1000 * ratio(s.Counters[CtrL2DMisses], s.Counters[CtrInstructions])
		},
	}

	// TLBMissesPerKInstr is TLB misses per thousand instructions.
	TLBMissesPerKInstr = Metric{
		Name: "TLBMPKI",
		Eval: func(s Sample) float64 {
			return 1000 * ratio(s.Counters[CtrTLBMisses], s.Counters[CtrInstructions])
		},
	}
)

// DefaultSpace is the two-dimensional performance space the paper uses for
// every figure: IPC on the X axis, Instructions Completed on the Y axis.
func DefaultSpace() []Metric { return []Metric{IPC, Instructions} }

// ByName resolves one of the standard metrics by name. Custom metrics must
// be passed around by value instead.
func ByName(name string) (Metric, bool) {
	for _, m := range []Metric{
		IPC, Instructions, Cycles, DurationMS,
		L1DMisses, L2DMisses, TLBMisses,
		L1MissesPerKInstr, L2MissesPerKInstr, TLBMissesPerKInstr,
	} {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Space evaluates a list of metrics over one sample, producing the burst's
// coordinates in the performance space.
func Space(ms []Metric, s Sample) []float64 {
	return SpaceInto(make([]float64, len(ms)), ms, s)
}

// SpaceInto is Space writing into dst (len(dst) must equal len(ms)),
// letting callers lay frames out as one flat allocation instead of a
// boxed slice per burst.
func SpaceInto(dst []float64, ms []Metric, s Sample) []float64 {
	for i, m := range ms {
		dst[i] = m.Eval(s)
	}
	return dst
}

// Range is a closed interval [Min, Max] on one metric axis.
type Range struct {
	Min, Max float64
}

// Width returns Max-Min.
func (r Range) Width() float64 { return r.Max - r.Min }

// Contains reports whether v lies in the interval.
func (r Range) Contains(v float64) bool { return v >= r.Min && v <= r.Max }

// Extend grows the range to include v.
func (r *Range) Extend(v float64) {
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
}

// EmptyRange returns a range that any Extend call will snap to.
func EmptyRange() Range {
	return Range{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Empty reports whether the range has never been extended.
func (r Range) Empty() bool { return r.Min > r.Max }

// Normalize maps v into [0,1] over the range. Degenerate ranges map to 0.5
// so that identical values cluster together instead of exploding.
func (r Range) Normalize(v float64) float64 {
	w := r.Width()
	if w <= 0 {
		return 0.5
	}
	return (v - r.Min) / w
}

// Denormalize is the inverse of Normalize for non-degenerate ranges.
func (r Range) Denormalize(u float64) float64 {
	w := r.Width()
	if w <= 0 {
		return r.Min
	}
	return r.Min + u*w
}

// RangesOf computes per-dimension ranges over a point set.
func RangesOf(points [][]float64) []Range {
	if len(points) == 0 {
		return nil
	}
	dims := len(points[0])
	rs := make([]Range, dims)
	for d := range rs {
		rs[d] = EmptyRange()
	}
	for _, p := range points {
		for d, v := range p {
			rs[d].Extend(v)
		}
	}
	return rs
}
