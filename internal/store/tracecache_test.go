package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceKeyModes(t *testing.T) {
	raw := []byte("T label\nB 0 0 0 1 phase\n")
	strict := TraceKey(raw, false)
	lenient := TraceKey(raw, true)
	if strict == lenient {
		t.Fatal("strict and lenient keys must differ for the same bytes")
	}
	if !validTraceKey(strict) || !validTraceKey(lenient) {
		t.Fatalf("keys are not 64-hex: %q %q", strict, lenient)
	}
	if TraceKey(raw, false) != strict {
		t.Fatal("TraceKey is not deterministic")
	}
	if TraceKey(append(raw, 'x'), false) == strict {
		t.Fatal("different bytes must yield different keys")
	}
}

func TestTraceCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenTraceCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKey([]byte("alpha"), false)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	blob := []byte("colbin-bytes-stand-in")
	if err := c.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(blob)) {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 entry, %d bytes", st, len(blob))
	}

	// Overwriting a key replaces the bytes and the accounting.
	blob2 := []byte("shorter")
	if err := c.Put(key, blob2); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(key); !bytes.Equal(got, blob2) {
		t.Fatalf("Get after overwrite = %q", got)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len(blob2)) {
		t.Fatalf("stats after overwrite %+v", st)
	}
}

func TestTraceCacheRejectsMalformedKey(t *testing.T) {
	c, err := OpenTraceCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", strings.Repeat("z", 64), "../../etc/passwd"} {
		if err := c.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted a malformed key", key)
		}
	}
}

func TestTraceCachePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenTraceCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKey([]byte("persist"), true)
	if err := c.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-Put: a torn temp file and a foreign file are
	// both in the directory when the cache reopens.
	if err := os.WriteFile(filepath.Join(dir, key+".123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenTraceCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("entry did not survive reopen: %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened cache indexed %d entries, want 1", st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".123.tmp")); !os.IsNotExist(err) {
		t.Fatal("torn temp file was not swept on open")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file must be left alone")
	}
}

func TestTraceCacheEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenTraceCache(dir, 250) // room for two 100-byte entries
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 100)
	k1 := TraceKey([]byte("one"), false)
	k2 := TraceKey([]byte("two"), false)
	k3 := TraceKey([]byte("three"), false)
	for _, k := range []string{k1, k2} {
		if err := c.Put(k, blob); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 becomes least-recently-used, then overflow.
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	if err := c.Put(k3, blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	for _, k := range []string{k1, k3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k[:8])
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	if st.Bytes > 250 {
		t.Fatalf("cache over budget: %d bytes", st.Bytes)
	}
	if _, err := os.Stat(filepath.Join(dir, k2+".colbin")); !os.IsNotExist(err) {
		t.Fatal("evicted entry left its file behind")
	}
}

func TestTraceCacheDeletePoisoned(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenTraceCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKey([]byte("poison"), false)
	if err := c.Put(key, []byte("good")); err != nil {
		t.Fatal(err)
	}
	c.Delete(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("deleted entry still readable")
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after delete %+v", st)
	}
	// Deleting a missing key is a no-op apart from the counter.
	c.Delete(key)
	if st := c.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", st.Rejected)
	}
}

func TestTraceCacheGetMissingFile(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenTraceCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKey([]byte("vanish"), false)
	if err := c.Put(key, []byte("here")); err != nil {
		t.Fatal(err)
	}
	// The file disappears out from under the index (operator rm, disk
	// cleanup): Get must degrade to a miss, not an error or a panic.
	if err := os.Remove(filepath.Join(dir, key+".colbin")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on a removed file")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("index kept a vanished entry: %+v", st)
	}
}
