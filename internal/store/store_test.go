package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"perftrack/internal/faults"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func rec(i int, series string) Record {
	return Record{
		Key:      fmt.Sprintf("key-%04d", i),
		Series:   series,
		Label:    fmt.Sprintf("run-%d", i),
		UnixNano: int64(1000 + i),
		Payload:  []byte(fmt.Sprintf(`{"run":%d,"payload":"0123456789abcdef"}`, i)),
	}
}

// TestRoundtrip: append, read back, list, reopen, read back again.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Append(rec(i, "s1")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	check := func(s *Store, phase string) {
		t.Helper()
		for i := 0; i < n; i++ {
			want := rec(i, "s1")
			got, ok, err := s.Get(want.Key)
			if err != nil || !ok {
				t.Fatalf("%s: Get(%s): ok=%v err=%v", phase, want.Key, ok, err)
			}
			if !bytes.Equal(got, want.Payload) {
				t.Fatalf("%s: Get(%s) payload mismatch", phase, want.Key)
			}
		}
		metas := s.List()
		if len(metas) != n {
			t.Fatalf("%s: List() has %d records, want %d", phase, len(metas), n)
		}
		for i := 1; i < len(metas); i++ {
			if metas[i].Seq <= metas[i-1].Seq {
				t.Fatalf("%s: List() not in sequence order", phase)
			}
		}
		if got := len(s.Series("s1")); got != n {
			t.Fatalf("%s: Series(s1) has %d records, want %d", phase, got, n)
		}
		if got := s.SeriesNames(); len(got) != 1 || got[0] != "s1" {
			t.Fatalf("%s: SeriesNames() = %v", phase, got)
		}
	}
	check(s, "before close")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	check(s2, "after reopen")
	if st := s2.Stats(); st.Records != n || st.TornTruncated != 0 || st.CorruptDropped != 0 {
		t.Fatalf("reopen stats %+v", st)
	}
}

// TestSupersede: appending the same key again must shadow the old
// payload, both live and across a reopen.
func TestSupersede(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: 1})
	r := rec(1, "a")
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	r2 := r
	r2.Series = "b"
	r2.Payload = []byte(`{"v":2}`)
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(r.Key)
	if err != nil || !ok || !bytes.Equal(got, r2.Payload) {
		t.Fatalf("Get after supersede: %q ok=%v err=%v", got, ok, err)
	}
	if len(s.List()) != 1 {
		t.Fatalf("List() = %v, want 1 live record", s.List())
	}
	if got := s.Series("a"); len(got) != 0 {
		t.Fatalf("old series still lists the record: %v", got)
	}
	if got := s.Series("b"); len(got) != 1 {
		t.Fatalf("new series missing the record: %v", got)
	}
	if st := s.Stats(); st.Superseded != 1 {
		t.Fatalf("Superseded = %d, want 1", st.Superseded)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got, ok, err = s2.Get(r.Key)
	if err != nil || !ok || !bytes.Equal(got, r2.Payload) {
		t.Fatalf("Get after reopen: %q ok=%v err=%v", got, ok, err)
	}
}

// TestSegmentRotation: a tiny segment bound must spread records over
// many files, all of them readable, and rotation must survive reopen.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, SyncEvery: 4})
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.Append(rec(i, "rot")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 4 {
		t.Fatalf("only %d segments with a 256-byte bound", st.Segments)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer s2.Close()
	if got := len(s2.List()); got != n {
		t.Fatalf("reopen found %d records, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if _, ok, err := s2.Get(fmt.Sprintf("key-%04d", i)); !ok || err != nil {
			t.Fatalf("Get(key-%04d) after rotation: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestCompaction: superseded records vanish, disk shrinks, everything
// live survives, and the compacted store reopens cleanly.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 512, SyncEvery: 1})
	const n = 10
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			r := rec(i, "c")
			r.Payload = []byte(fmt.Sprintf(`{"round":%d,"i":%d}`, round, i))
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.Superseded == 0 {
		t.Fatal("no superseded records before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Records != n {
		t.Fatalf("compaction changed live count: %d -> %d", before.Records, after.Records)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not shrink the store: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	if after.Compactions != 1 || after.Superseded != 0 {
		t.Fatalf("compaction stats %+v", after)
	}
	for i := 0; i < n; i++ {
		got, ok, err := s.Get(fmt.Sprintf("key-%04d", i))
		want := fmt.Sprintf(`{"round":4,"i":%d}`, i)
		if err != nil || !ok || string(got) != want {
			t.Fatalf("Get after compact: %q ok=%v err=%v", got, ok, err)
		}
	}
	// The store stays writable after compaction.
	if err := s.Append(rec(99, "c")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.List()); got != n+1 {
		t.Fatalf("reopen after compact found %d records, want %d", got, n+1)
	}
}

// TestResolveKey: exact, unique-prefix, ambiguous and missing lookups.
func TestResolveKey(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for _, k := range []string{"abcd1234", "abff5678", "zz009988"} {
		if err := s.Append(Record{Key: k, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := s.ResolveKey("abcd1234"); err != nil || got != "abcd1234" {
		t.Fatalf("exact: %q %v", got, err)
	}
	if got, err := s.ResolveKey("zz"); err != nil || got != "zz009988" {
		t.Fatalf("prefix: %q %v", got, err)
	}
	if _, err := s.ResolveKey("ab"); err == nil {
		t.Fatal("ambiguous prefix resolved")
	}
	if _, err := s.ResolveKey("nope"); err == nil {
		t.Fatal("missing key resolved")
	}
}

// TestFsyncBatching: SyncEvery batches fsyncs and the OnFsync hook
// observes them.
func TestFsyncBatching(t *testing.T) {
	var observed int
	s := mustOpen(t, t.TempDir(), Options{SyncEvery: 4, OnFsync: func(time.Duration) { observed++ }})
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Append(rec(i, "")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Fsyncs != 2 { // after records 4 and 8
		t.Fatalf("Fsyncs = %d after 10 appends with SyncEvery=4, want 2", st.Fsyncs)
	}
	if uint64(observed) != st.Fsyncs {
		t.Fatalf("OnFsync observed %d, stats say %d", observed, st.Fsyncs)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Fsyncs; got != 3 {
		t.Fatalf("Fsyncs after explicit Sync = %d, want 3", got)
	}
}

// TestMidHistoryCorruption: flipping bytes in an older (sealed) segment
// must not prevent opening; the records after the corruption point in
// that segment are dropped, later segments stay intact, and compaction
// clears the accounting.
func TestMidHistoryCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 300, SyncEvery: 1})
	const n = 30
	for i := 0; i < n; i++ {
		if err := s.Append(rec(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	ids, err := listSegments(faults.OS{}, dir)
	if err != nil || len(ids) < 3 {
		t.Fatalf("need >=3 segments, got %v (%v)", ids, err)
	}
	// Corrupt the middle of the first segment (not the newest).
	path := filepath.Join(dir, segName(ids[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{MaxSegmentBytes: 300})
	defer s2.Close()
	st := s2.Stats()
	if st.CorruptDropped == 0 {
		t.Fatalf("corruption not detected: %+v", st)
	}
	if st.Records == 0 || st.Records >= n {
		t.Fatalf("expected partial recovery, got %d/%d records", st.Records, n)
	}
	// The newest records (later segments) must all have survived.
	for i := n - 5; i < n; i++ {
		if _, ok, err := s2.Get(fmt.Sprintf("key-%04d", i)); !ok || err != nil {
			t.Fatalf("late record key-%04d lost to early corruption: ok=%v err=%v", i, ok, err)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Records; got != st.Records {
		t.Fatalf("compaction changed live count %d -> %d", st.Records, got)
	}
}
