package store

// The trace conversion cache: a content-addressed directory of binary
// columnar trace files filed beside the perfdb segments. Each entry is
// the colbin conversion of one uploaded text trace, keyed by the SHA-256
// of the raw text plus the decode mode, so repeat submissions of the
// same text pay the text parse exactly once and hit the fast binary
// decode on every later read.
//
// The cache is a pure accelerator: every entry is reconstructible from
// its source text, so eviction, corruption and crash recovery all reduce
// to "delete the file and fall back to the text parse". That is what
// makes it journal-safe — replayed intents re-derive the same keys and
// either hit the surviving entries or rebuild them.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// TraceCacheStats is a point-in-time snapshot of cache effectiveness.
type TraceCacheStats struct {
	Hits, Misses int64
	// Entries and Bytes describe the resident files.
	Entries int
	Bytes   int64
	// Evictions counts entries removed by the byte budget; Rejected
	// counts entries dropped because they were corrupt on read.
	Evictions, Rejected int64
}

// TraceCache is a bounded, content-addressed file cache. Keys are hex
// SHA-256 strings; values are opaque byte blobs (colbin encodings, from
// the cache's point of view). Writes are atomic (temp file + rename), so
// a crash mid-Put leaves either the full entry or no entry, never a torn
// one — and torn temp files are swept on open.
type TraceCache struct {
	dir      string
	maxBytes int64

	hits, misses, evictions, rejected atomic.Int64

	mu    sync.Mutex
	bytes int64
	size  map[string]int64 // key -> file size
	seq   map[string]int64 // key -> last-use tick, for eviction order
	tick  int64
}

// TraceKey derives the cache key for one raw uploaded trace: the decode
// mode is part of the key because strict and lenient parses of the same
// bytes can legitimately differ.
func TraceKey(raw []byte, lenient bool) string {
	h := sha256.New()
	if lenient {
		h.Write([]byte("perftrack-tracecache-lenient\n"))
	} else {
		h.Write([]byte("perftrack-tracecache-strict\n"))
	}
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil))
}

// OpenTraceCache opens (creating if needed) the cache directory and
// indexes the surviving entries. maxBytes <= 0 means unbounded.
func OpenTraceCache(dir string, maxBytes int64) (*TraceCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	c := &TraceCache{
		dir: dir, maxBytes: maxBytes,
		size: map[string]int64{}, seq: map[string]int64{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash between create and rename: the entry never
			// existed; sweep the debris.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		key, ok := strings.CutSuffix(name, ".colbin")
		if !ok || !validTraceKey(key) {
			continue // not ours; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		c.tick++
		c.size[key] = info.Size()
		c.seq[key] = c.tick
		c.bytes += info.Size()
	}
	c.evictLocked()
	return c, nil
}

func validTraceKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func (c *TraceCache) path(key string) string {
	return filepath.Join(c.dir, key+".colbin")
}

// Get returns the cached blob for key, or nil/false on a miss. A file
// that exists but cannot be read counts as a miss (the caller falls back
// to the text parse; Delete the poisoned entry explicitly).
func (c *TraceCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	_, known := c.size[key]
	if known {
		c.tick++
		c.seq[key] = c.tick
	}
	c.mu.Unlock()
	if !known {
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		c.forget(key)
		return nil, false
	}
	c.hits.Add(1)
	return data, true
}

// Put files a blob under key, atomically, and evicts least-recently-used
// entries if the byte budget is now exceeded. Errors are returned but
// safe to ignore: a failed Put just means the next read re-parses.
func (c *TraceCache) Put(key string, data []byte) error {
	if !validTraceKey(key) {
		return fmt.Errorf("tracecache: malformed key %q", key)
	}
	tmp, err := os.CreateTemp(c.dir, key+".*.tmp")
	if err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	c.mu.Lock()
	if old, ok := c.size[key]; ok {
		c.bytes -= old
	}
	c.tick++
	c.size[key] = int64(len(data))
	c.seq[key] = c.tick
	c.bytes += int64(len(data))
	c.evictLocked()
	c.mu.Unlock()
	return nil
}

// Delete removes an entry (e.g. one that decoded as corrupt). Missing
// entries are not an error.
func (c *TraceCache) Delete(key string) {
	c.rejected.Add(1)
	os.Remove(c.path(key))
	c.forget(key)
}

// forget drops the index entry without touching the counter.
func (c *TraceCache) forget(key string) {
	c.mu.Lock()
	if sz, ok := c.size[key]; ok {
		c.bytes -= sz
		delete(c.size, key)
		delete(c.seq, key)
	}
	c.mu.Unlock()
}

// evictLocked removes least-recently-used entries until the byte budget
// holds. Caller holds c.mu.
func (c *TraceCache) evictLocked() {
	if c.maxBytes <= 0 || c.bytes <= c.maxBytes {
		return
	}
	keys := make([]string, 0, len(c.seq))
	for k := range c.seq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return c.seq[keys[i]] < c.seq[keys[j]] })
	for _, k := range keys {
		if c.bytes <= c.maxBytes {
			break
		}
		os.Remove(c.path(k))
		c.bytes -= c.size[k]
		delete(c.size, k)
		delete(c.seq, k)
		c.evictions.Add(1)
	}
}

// Stats snapshots the counters.
func (c *TraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	entries, bytes := len(c.size), c.bytes
	c.mu.Unlock()
	return TraceCacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: entries, Bytes: bytes,
		Evictions: c.evictions.Load(), Rejected: c.rejected.Load(),
	}
}
