package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryEveryOffset is the exhaustive torn-tail contract: for
// a single-segment store holding N records, truncating the segment at
// EVERY byte offset must (a) open without error and (b) recover exactly
// the prefix of records whose frames lie entirely within the truncated
// length — no more, no fewer, and each with intact payload bytes.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	const n = 8
	master := t.TempDir()
	s := mustOpen(t, master, Options{SyncEvery: 1})
	var boundaries []int64 // byte offset after each record's frame
	var off int64
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		r := rec(i, "crash")
		payloads[i] = r.Payload
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		off += int64(len(encodeRecord(nil, r, uint64(i+1))))
		boundaries = append(boundaries, off)
	}
	s.Close()

	segPath := filepath.Join(master, segName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != boundaries[n-1] {
		t.Fatalf("segment is %d bytes, expected %d", len(full), boundaries[n-1])
	}

	// intactPrefix returns how many whole records fit in cut bytes.
	intactPrefix := func(cut int64) int {
		k := 0
		for k < n && boundaries[k] <= cut {
			k++
		}
		return k
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		want := intactPrefix(cut)
		metas := s2.List()
		if len(metas) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(metas), want)
		}
		for i := 0; i < want; i++ {
			got, ok, err := s2.Get(fmt.Sprintf("key-%04d", i))
			if err != nil || !ok || !bytes.Equal(got, payloads[i]) {
				t.Fatalf("cut=%d: record %d damaged: ok=%v err=%v", cut, i, ok, err)
			}
		}
		// Torn bytes must have been truncated away on disk exactly to the
		// last record boundary.
		fi, err := os.Stat(filepath.Join(dir, segName(0)))
		if err != nil {
			t.Fatal(err)
		}
		var wantSize int64
		if want > 0 {
			wantSize = boundaries[want-1]
		}
		if fi.Size() != wantSize {
			t.Fatalf("cut=%d: segment is %d bytes after recovery, want %d", cut, fi.Size(), wantSize)
		}
		// And the recovered store must accept new appends that survive
		// another reopen (the write path is healthy after truncation).
		if cut%97 == 0 { // sampled: the full product would be slow
			if err := s2.Append(rec(1000, "post")); err != nil {
				t.Fatalf("cut=%d: append after recovery: %v", cut, err)
			}
			s2.Close()
			s3, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("cut=%d: reopen after post-recovery append: %v", cut, err)
			}
			if _, ok, _ := s3.Get("key-1000"); !ok {
				t.Fatalf("cut=%d: post-recovery append lost", cut)
			}
			s3.Close()
			continue
		}
		s2.Close()
	}
}

// TestCrashRecoveryBitFlipTail: flipping any single byte of the LAST
// record's frame must drop exactly that record (CRC catches it), keep
// every earlier record, and leave the store writable.
func TestCrashRecoveryBitFlipTail(t *testing.T) {
	const n = 4
	master := t.TempDir()
	s := mustOpen(t, master, Options{SyncEvery: 1})
	var boundaries []int64
	var off int64
	for i := 0; i < n; i++ {
		r := rec(i, "flip")
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		off += int64(len(encodeRecord(nil, r, uint64(i+1))))
		boundaries = append(boundaries, off)
	}
	s.Close()
	full, err := os.ReadFile(filepath.Join(master, segName(0)))
	if err != nil {
		t.Fatal(err)
	}

	lastStart := boundaries[n-2]
	for pos := lastStart; pos < int64(len(full)); pos++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x01
		if err := os.WriteFile(filepath.Join(dir, segName(0)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("pos=%d: Open failed: %v", pos, err)
		}
		if got := len(s2.List()); got != n-1 {
			t.Fatalf("pos=%d: recovered %d records, want %d", pos, got, n-1)
		}
		if err := s2.Append(rec(2000, "post")); err != nil {
			t.Fatalf("pos=%d: append after recovery: %v", pos, err)
		}
		s2.Close()
	}
}
