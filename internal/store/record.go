package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk record format, version 1. Each record is self-delimiting and
// self-checking so a reader can walk a segment sequentially with no
// external index and detect exactly where a torn write begins:
//
//	u32  bodyLen   (little-endian; length of body, excludes this header)
//	u32  crc32c    (Castagnoli, over body)
//	body:
//	  u8   version (1)
//	  u64  seq      (store-wide append sequence; higher supersedes)
//	  i64  unixNano (submission wall-clock time)
//	  u32  keyLen    | key     (hex content hash of the inputs)
//	  u32  seriesLen | series  (named run series, may be empty)
//	  u32  labelLen  | label   (human-readable run label, may be empty)
//	  u32  payloadLen| payload (the byte-deterministic result JSON)
//
// A record whose header cannot be fully read, whose body is shorter than
// bodyLen, or whose CRC mismatches is a torn tail (if nothing valid
// follows) or corruption; scanning stops there.

const (
	recordVersion = 1
	headerSize    = 8
	// maxBodyBytes guards the scanner against absurd lengths produced by
	// corruption: a 4 GiB allocation from a flipped bit would be a worse
	// failure mode than dropping the tail.
	maxBodyBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one stored result.
type Record struct {
	// Key is the hex content hash addressing the result (the job's
	// cache key: canonical trace hashes + pipeline configuration).
	Key string
	// Series optionally names the run series this result belongs to
	// ("nightly-bt", "scaling-2026q3", ...): the unit the trajectory
	// engine chains over.
	Series string
	// Label is a human-readable run label ("build-4711", "2026-08-05").
	Label string
	// UnixNano is the submission time.
	UnixNano int64
	// Payload is the result document (opaque to the store).
	Payload []byte
}

// Meta is the index entry for a live record: everything but the payload.
type Meta struct {
	Key      string `json:"key"`
	Series   string `json:"series,omitempty"`
	Label    string `json:"label,omitempty"`
	UnixNano int64  `json:"unixNano"`
	Seq      uint64 `json:"seq"`
	Size     int    `json:"size"`
}

var (
	// errTorn reports an incomplete record at the end of a segment.
	errTorn = errors.New("store: torn record")
	// errCorrupt reports a record that is complete but fails its checks.
	errCorrupt = errors.New("store: corrupt record")
)

// encodeRecord appends the framed encoding of (rec, seq) to buf and
// returns the extended slice.
func encodeRecord(buf []byte, rec Record, seq uint64) []byte {
	bodyLen := 1 + 8 + 8 +
		4 + len(rec.Key) + 4 + len(rec.Series) + 4 + len(rec.Label) +
		4 + len(rec.Payload)
	start := len(buf)
	buf = append(buf, make([]byte, headerSize)...)
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.UnixNano))
	for _, s := range []string{rec.Key, rec.Series, rec.Label} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Payload)))
	buf = append(buf, rec.Payload...)

	body := buf[start+headerSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTable))
	return buf
}

// decodeBody parses a CRC-verified record body.
func decodeBody(body []byte) (Record, uint64, error) {
	var rec Record
	if len(body) < 1+8+8 {
		return rec, 0, errCorrupt
	}
	if body[0] != recordVersion {
		return rec, 0, fmt.Errorf("%w: unknown version %d", errCorrupt, body[0])
	}
	seq := binary.LittleEndian.Uint64(body[1:])
	rec.UnixNano = int64(binary.LittleEndian.Uint64(body[9:]))
	rest := body[17:]
	next := func() (string, bool) {
		if len(rest) < 4 {
			return "", false
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return "", false
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, true
	}
	var ok bool
	if rec.Key, ok = next(); !ok {
		return rec, 0, errCorrupt
	}
	if rec.Series, ok = next(); !ok {
		return rec, 0, errCorrupt
	}
	if rec.Label, ok = next(); !ok {
		return rec, 0, errCorrupt
	}
	if len(rest) < 4 {
		return rec, 0, errCorrupt
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != n {
		return rec, 0, errCorrupt
	}
	rec.Payload = append([]byte(nil), rest...)
	return rec, seq, nil
}

// readRecord reads one framed record from r at the current position.
// It returns errTorn when the stream ends mid-record (including a clean
// EOF at a record boundary, signalled as io.EOF) and errCorrupt when the
// frame is complete but invalid.
func readRecord(r io.Reader) (Record, uint64, int64, error) {
	var hdr [headerSize]byte
	switch _, err := io.ReadFull(r, hdr[:]); err {
	case nil:
	case io.EOF:
		return Record{}, 0, 0, io.EOF // clean end of segment
	default:
		return Record{}, 0, 0, errTorn
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if bodyLen == 0 || bodyLen > maxBodyBytes {
		return Record{}, 0, 0, errCorrupt
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, 0, errTorn
	}
	if crc32.Checksum(body, crcTable) != crc {
		return Record{}, 0, 0, errCorrupt
	}
	rec, seq, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, 0, err
	}
	return rec, seq, int64(headerSize) + int64(bodyLen), nil
}
