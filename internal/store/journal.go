package store

// The job journal: trackd's write-ahead log. A job is journaled as an
// *intent* before the HTTP 202 is returned — the intent fsyncs
// immediately, so an acknowledged job survives any crash — and is
// *resolved* (done or fail) once its result lands in perfdb or it
// reaches a definitive error. On startup the service replays unresolved
// intents, consulting the store first so nothing already persisted is
// recomputed.
//
// The on-disk discipline is the segment discipline of the store itself:
// CRC-framed records (record.go), sequential scan, torn-tail truncation.
// Entries reuse the Record frame with the Series field carrying the
// entry type ("intent"/"done"/"fail"), Label carrying a fail's error
// message, and Payload carrying the serialized job request.
//
// Instead of one growing file, the journal keeps *generation* files
// (journal-NNNNNN.wal). Compaction never renames or rewrites in place —
// rename is exactly the operation the fault injector shows to be
// non-atomic on hostile filesystems. It writes the still-pending intents
// into a brand-new generation, fsyncs it, and only then deletes the old
// files. Recovery unions all generations in id order, so a crash at any
// point of compaction leaves either the old files, both (harmless
// duplicate intents; resolutions still apply), or just the new one.
//
// Durability contract: Intent returns nil only after its bytes are
// fsynced. Resolutions batch (SyncEvery) — losing a tail of resolutions
// re-replays jobs whose results are already stored, which replay
// deduplicates against the store.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"perftrack/internal/faults"
)

const (
	genPrefix, genSuffix = "journal-", ".wal"

	entryIntent = "intent"
	entryDone   = "done"
	entryFail   = "fail"
)

func genName(id int) string { return fmt.Sprintf("%s%06d%s", genPrefix, id, genSuffix) }

// JournalOptions parametrises OpenJournal.
type JournalOptions struct {
	// SyncEvery batches resolution fsyncs (default 8). Intents always
	// sync immediately; only done/fail entries batch.
	SyncEvery int
	// CompactEvery triggers compaction after this many resolutions
	// (default 512).
	CompactEvery int
	// OnFsync, when set, observes every fsync latency (metrics hook).
	OnFsync func(time.Duration)
	// FS is the filesystem (default the real one); tests plug in
	// faults.FaultFS.
	FS faults.FS
	// Now supplies timestamps (default time.Now); the deterministic
	// simulations pin it.
	Now func() time.Time
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 512
	}
	if o.FS == nil {
		o.FS = faults.OS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// PendingIntent is one journaled job awaiting resolution.
type PendingIntent struct {
	Key      string
	Payload  []byte
	Seq      uint64
	UnixNano int64
}

// JournalStats snapshots the journal's state and cumulative activity.
type JournalStats struct {
	// Pending is the number of unresolved intents.
	Pending int
	// Generations is the number of on-disk generation files.
	Generations int
	// ActiveGen is the id of the generation currently appended to.
	ActiveGen int
	// Bytes is the size of the active generation; SyncedBytes the prefix
	// of it known durable (crash simulations may truncate anywhere at or
	// beyond SyncedBytes, never before).
	Bytes       int64
	SyncedBytes int64
	// Appends counts intents + resolutions written; Fsyncs, Compactions
	// and WriteHeals cumulative operations.
	Appends     uint64
	Fsyncs      uint64
	Compactions uint64
	WriteHeals  uint64
	// TornTruncated counts bytes cut off generation tails at open;
	// CorruptDropped counts unreadable mid-file regions skipped.
	TornTruncated  int64
	CorruptDropped uint64
}

// Journal is an open job journal. Safe for concurrent use.
type Journal struct {
	dir  string
	opts JournalOptions

	mu        sync.Mutex
	active    faults.File
	activeGen int
	bytes     int64 // size of the active generation
	synced    int64 // durable prefix of the active generation
	dirty     int   // unsynced resolutions
	seq       uint64
	pending   map[string]PendingIntent
	resolved  int // resolutions since the last compaction
	genCount  int // on-disk generation files (tracked, not re-listed)
	stats     JournalStats
	closed    bool

	// statsMu guards statsSnap, the read-side copy of the journal state.
	// j.mu is held across fsyncs, so Stats readers (metrics scrapes,
	// health snapshots) get their own mutex and never queue behind the
	// intent fsync path. statsSnap is republished, with j.mu held, at the
	// end of every mutating operation.
	statsMu   sync.Mutex
	statsSnap JournalStats
}

// publishLocked refreshes the read-side stats snapshot; callers hold j.mu.
func (j *Journal) publishLocked() {
	st := j.stats
	st.Pending = len(j.pending)
	st.ActiveGen = j.activeGen
	st.Bytes = j.bytes
	st.SyncedBytes = j.synced
	st.Generations = j.genCount
	j.statsMu.Lock()
	j.statsSnap = st
	j.statsMu.Unlock()
}

// OpenJournal scans dir for journal generations, truncates any torn
// tail off the newest, unions intents and resolutions into the pending
// set, and compacts multi-generation state down to one fresh file.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts, activeGen: -1, pending: map[string]PendingIntent{}}
	gens, err := listGenerations(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	for i, id := range gens {
		if err := j.scanGeneration(id, i == len(gens)-1); err != nil {
			return nil, err
		}
	}
	if len(gens) > 0 {
		j.activeGen = gens[len(gens)-1]
	}
	j.genCount = len(gens)
	// Collapse history into a single fresh generation: replay then needs
	// to look at exactly one file, and stale resolutions stop occupying
	// disk. Skipped only when there is nothing to collapse.
	if len(gens) > 1 || (len(gens) == 1 && j.bytes > 0) {
		if err := j.compactLocked(); err != nil {
			return nil, err
		}
		j.publishLocked()
		return j, nil
	}
	if err := j.openActiveLocked(); err != nil {
		return nil, err
	}
	j.genCount = 1 // openActiveLocked created generation 0 if none existed
	j.publishLocked()
	return j, nil
}

// listGenerations returns generation ids present in dir, ascending.
func listGenerations(fsys faults.FS, dir string) ([]int, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", dir, err)
	}
	var ids []int
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, genPrefix+"%d"+genSuffix, &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// scanGeneration folds one generation's entries into the pending set.
// The newest generation's torn tail is truncated away; older
// generations stop scanning at the first bad record.
func (j *Journal) scanGeneration(id int, newest bool) error {
	path := filepath.Join(j.dir, genName(id))
	f, err := j.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: opening %s: %w", path, err)
	}
	var off int64
	for {
		rec, seq, n, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			fi, statErr := f.Stat()
			if statErr != nil {
				f.Close()
				return statErr
			}
			if newest {
				f.Close()
				if truncErr := j.opts.FS.Truncate(path, off); truncErr != nil {
					return fmt.Errorf("journal: truncating torn tail of %s: %w", path, truncErr)
				}
				j.stats.TornTruncated += fi.Size() - off
				j.bytes, j.synced = off, off
				return nil
			}
			j.stats.CorruptDropped++
			break
		}
		j.applyEntry(rec, seq)
		off += n
	}
	f.Close()
	if newest {
		j.bytes, j.synced = off, off
	}
	return nil
}

// applyEntry folds one scanned entry into the pending set.
func (j *Journal) applyEntry(rec Record, seq uint64) {
	if seq > j.seq {
		j.seq = seq
	}
	switch rec.Series {
	case entryIntent:
		// Keep the earliest intent for a key (compaction duplicates and
		// resubmits after done both funnel through here; the payload is
		// identical for identical keys by construction).
		if _, ok := j.pending[rec.Key]; !ok {
			j.pending[rec.Key] = PendingIntent{
				Key: rec.Key, Payload: rec.Payload, Seq: seq, UnixNano: rec.UnixNano,
			}
		}
	case entryDone, entryFail:
		delete(j.pending, rec.Key)
	}
}

// openActiveLocked opens (or creates) the append generation.
func (j *Journal) openActiveLocked() error {
	if j.activeGen < 0 {
		j.activeGen = 0
	}
	path := filepath.Join(j.dir, genName(j.activeGen))
	f, err := j.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening generation: %w", err)
	}
	j.active = f
	return nil
}

// appendLocked frames and writes one entry, healing the generation on a
// failed write exactly like the store heals its segment.
func (j *Journal) appendLocked(typ, key, label string, payload []byte) error {
	if j.active == nil {
		if err := j.openActiveLocked(); err != nil {
			return err
		}
	}
	j.seq++
	rec := Record{Key: key, Series: typ, Label: label, UnixNano: j.opts.Now().UnixNano(), Payload: payload}
	buf := encodeRecord(nil, rec, j.seq)
	if _, err := j.active.Write(buf); err != nil {
		j.healLocked()
		return fmt.Errorf("journal: appending %s: %w", typ, err)
	}
	j.bytes += int64(len(buf))
	j.stats.Appends++
	return nil
}

// healLocked recovers the active generation after a failed write:
// truncate back to the intact prefix, or — if even that fails — seal it
// and start a new generation.
func (j *Journal) healLocked() {
	path := filepath.Join(j.dir, genName(j.activeGen))
	if err := j.opts.FS.Truncate(path, j.bytes); err == nil {
		j.stats.WriteHeals++
		return
	}
	j.active.Sync()
	j.active.Close()
	j.stats.WriteHeals++
	j.activeGen++
	j.genCount++
	j.bytes, j.synced, j.dirty = 0, 0, 0
	j.active = nil
	if err := j.openActiveLocked(); err != nil {
		j.active = nil // next append retries
	}
}

// syncLocked fsyncs the active generation and advances the durable mark.
func (j *Journal) syncLocked() error {
	if j.active == nil {
		return nil
	}
	t0 := time.Now()
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.stats.Fsyncs++
	j.synced = j.bytes
	j.dirty = 0
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(t0))
	}
	return nil
}

// Intent durably journals a job before it is acknowledged: on nil
// return the intent is fsynced and will be replayed after any crash
// until resolved. payload is the serialized job request replay feeds
// back through submission.
func (j *Journal) Intent(key string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	defer j.publishLocked()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if err := j.appendLocked(entryIntent, key, "", payload); err != nil {
		return err
	}
	if err := j.syncLocked(); err != nil {
		// Written but not durable: the caller will refuse the job, so
		// balance the intent with a best-effort fail entry. If the crash
		// comes first, replay executes an unacknowledged job once —
		// harmless, the client never got its 202.
		j.pending[key] = PendingIntent{Key: key, Payload: payload, Seq: j.seq, UnixNano: j.opts.Now().UnixNano()}
		j.resolveLocked(key, "intent not durable", false)
		return err
	}
	j.pending[key] = PendingIntent{Key: key, Payload: payload, Seq: j.seq, UnixNano: j.opts.Now().UnixNano()}
	return nil
}

// Resolve marks an intent finished: ok=true once the result is stored
// in perfdb, ok=false with errMsg for a definitive failure. Resolution
// fsyncs are batched; a crash may replay a resolved job, which replay
// deduplicates against the store.
func (j *Journal) Resolve(key, errMsg string, ok bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	defer j.publishLocked()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.resolveLocked(key, errMsg, ok)
}

func (j *Journal) resolveLocked(key, errMsg string, ok bool) error {
	if _, exists := j.pending[key]; !exists {
		return nil // double resolve (e.g. replay raced a duplicate submit)
	}
	typ := entryDone
	if !ok {
		typ = entryFail
	}
	if err := j.appendLocked(typ, key, errMsg, nil); err != nil {
		return err
	}
	delete(j.pending, key)
	j.resolved++
	j.dirty++
	if j.dirty >= j.opts.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.resolved >= j.opts.CompactEvery {
		return j.compactLocked()
	}
	return nil
}

// compactLocked rewrites the pending intents into a brand-new
// generation, fsyncs it, then deletes every older generation. A crash
// at any point leaves a recoverable union.
func (j *Journal) compactLocked() error {
	newGen := j.activeGen + 1
	path := filepath.Join(j.dir, genName(newGen))
	f, err := j.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	live := make([]PendingIntent, 0, len(j.pending))
	for _, p := range j.pending {
		live = append(live, p)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	var written int64
	for _, p := range live {
		buf := encodeRecord(nil, Record{
			Key: p.Key, Series: entryIntent, UnixNano: p.UnixNano, Payload: p.Payload,
		}, p.Seq)
		if _, err := f.Write(buf); err != nil {
			// Abort: drop the half-written new generation, keep appending
			// to the old one. Recovery ignores a torn newest generation's
			// tail, so even a leftover file here is safe.
			f.Close()
			j.opts.FS.Remove(path)
			return fmt.Errorf("journal: compact: %w", err)
		}
		written += int64(len(buf))
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		j.opts.FS.Remove(path)
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	j.stats.Fsyncs++
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(t0))
	}

	// The new generation is durable: adopt it, then clear out history.
	// The append handle must be an O_APPEND reopen, not the O_TRUNC
	// handle used to write it: healLocked recovers a failed partial
	// append by truncating the file back to j.bytes, and a non-append
	// handle's offset would stay past the new end — the next write would
	// then punch a zero-filled hole that recovery reads as the end of
	// the journal, silently dropping every record after it.
	f.Close()
	if j.active != nil {
		j.active.Close()
	}
	j.active = nil
	oldActive := j.activeGen
	j.activeGen = newGen
	j.bytes, j.synced = written, written
	j.dirty, j.resolved = 0, 0
	j.stats.Compactions++
	// The compacted generation is durable on disk whether or not the
	// reopen succeeds; on failure the next append retries the open
	// (appendLocked tolerates a nil handle).
	_ = j.openActiveLocked()
	remaining := 1 // the new generation
	gens, err := listGenerations(j.opts.FS, j.dir)
	if err == nil {
		for _, id := range gens {
			switch {
			case id == newGen:
			case id > newGen:
				remaining++
			case j.opts.FS.Remove(filepath.Join(j.dir, genName(id))) != nil:
				remaining++ // deletion failed; the file is still there
			}
		}
	} else {
		// Fall back to deleting what we know about.
		j.opts.FS.Remove(filepath.Join(j.dir, genName(oldActive)))
	}
	j.genCount = remaining
	return nil
}

// Pending returns the unresolved intents in journal order — the replay
// work list.
func (j *Journal) Pending() []PendingIntent {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]PendingIntent, 0, len(j.pending))
	for _, p := range j.pending {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Stats returns the journal state as of the last completed operation.
// It reads a snapshot behind its own mutex — no directory listing and
// no waiting behind j.mu, which is held across intent fsyncs — so
// metrics scrapes and health checks never stall on a slow disk.
func (j *Journal) Stats() JournalStats {
	j.statsMu.Lock()
	defer j.statsMu.Unlock()
	return j.statsSnap
}

// Sync forces batched resolutions to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	defer j.publishLocked()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

// Close syncs and releases the journal. Pending intents stay on disk
// for the next open to replay.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	defer j.publishLocked()
	if j.closed {
		return nil
	}
	j.closed = true
	var first error
	if j.active != nil {
		if err := j.syncLocked(); err != nil {
			first = err
		}
		if err := j.active.Close(); err != nil && first == nil {
			first = err
		}
		j.active = nil
	}
	return first
}
