package store

import (
	"bytes"
	"fmt"
	"testing"

	"perftrack/internal/faults"
)

// Fault-path coverage for the store's write side, driven by the
// filesystem injector: short writes, fsync errors and ENOSPC. The
// contract under test is the journal/perfdb durability story's
// foundation — a failed append never poisons the segment for later
// appends, and everything the store acknowledged survives a reopen.

// appendUntil drives appends through a store, retrying each record until
// it is accepted or the per-record retry budget is exhausted. It returns
// the keys the store acknowledged.
func appendUntil(t *testing.T, s *Store, n, retries int) map[string]bool {
	t.Helper()
	acked := map[string]bool{}
	for i := 0; i < n; i++ {
		r := rec(i, "faulty")
		for a := 0; a <= retries; a++ {
			if err := s.Append(r); err == nil {
				acked[r.Key] = true
				break
			}
		}
	}
	return acked
}

// verifyAcked reopens dir on the clean filesystem and checks every
// acknowledged key is present with its exact payload.
func verifyAcked(t *testing.T, dir string, acked map[string]bool) {
	t.Helper()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	for key := range acked {
		var i int
		fmt.Sscanf(key, "key-%d", &i)
		got, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked key %s lost after reopen: ok=%v err=%v", key, ok, err)
		}
		if want := rec(i, "faulty").Payload; !bytes.Equal(got, want) {
			t.Fatalf("key %s payload %q, want %q", key, got, want)
		}
	}
}

// TestAppendShortWriteHeals: every few appends the disk tears the frame
// mid-write. The store must fail that append, heal the segment, and keep
// accepting; reopen recovers exactly the acknowledged set.
func TestAppendShortWriteHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{ShortWriteEveryN: 5})
	s := mustOpen(t, dir, Options{SyncEvery: 1, FS: ffs})
	acked := appendUntil(t, s, 40, 2)
	if len(acked) != 40 {
		t.Fatalf("only %d/40 appends acknowledged after retries", len(acked))
	}
	st := s.Stats()
	if st.WriteHeals == 0 {
		t.Fatalf("no write heals recorded despite %d short writes", ffs.Report().ShortWrites)
	}
	s.Close()
	if r := ffs.Report(); r.ShortWrites == 0 {
		t.Fatal("injector never fired; test exercised nothing")
	}
	verifyAcked(t, dir, acked)
}

// TestAppendFsyncError: with SyncEvery=1 every append fsyncs; every
// other fsync fails. Appends whose fsync failed report the error, but
// their bytes are intact on disk, so a retry (which re-appends and
// supersedes) converges and nothing acknowledged is lost.
func TestAppendFsyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{SyncFailEveryN: 2})
	s := mustOpen(t, dir, Options{SyncEvery: 1, FS: ffs})
	acked := appendUntil(t, s, 30, 3)
	if len(acked) != 30 {
		t.Fatalf("only %d/30 appends acknowledged after retries", len(acked))
	}
	s.Close()
	if r := ffs.Report(); r.SyncErrors == 0 {
		t.Fatal("injector never fired")
	}
	verifyAcked(t, dir, acked)
}

// TestAppendENOSPC: the disk fills mid-run. Appends start failing
// permanently; the store must report errors rather than wedge or
// corrupt, and once space "returns" (reopen without the injector) the
// acknowledged prefix is fully readable.
func TestAppendENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{ENOSPCAfterBytes: 4096})
	s := mustOpen(t, dir, Options{SyncEvery: 1, FS: ffs})
	acked := map[string]bool{}
	var failed int
	for i := 0; i < 60; i++ {
		r := rec(i, "faulty")
		if err := s.Append(r); err == nil {
			acked[r.Key] = true
		} else {
			failed++
		}
	}
	if len(acked) == 0 || failed == 0 {
		t.Fatalf("want both successes and failures, got %d acked %d failed", len(acked), failed)
	}
	s.Close()
	verifyAcked(t, dir, acked)
}

// TestAppendAfterHealKeepsReads: a heal must not invalidate reads of
// records appended before and after the fault on the same segment.
func TestAppendAfterHealKeepsReads(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{ShortWriteEveryN: 4})
	s := mustOpen(t, dir, Options{SyncEvery: 1, FS: ffs})
	defer s.Close()
	acked := appendUntil(t, s, 20, 2)
	for key := range acked {
		var i int
		fmt.Sscanf(key, "key-%d", &i)
		got, ok, err := s.Get(key)
		if err != nil || !ok || !bytes.Equal(got, rec(i, "faulty").Payload) {
			t.Fatalf("live read of %s after heals: ok=%v err=%v", key, ok, err)
		}
	}
}
