package store

import (
	"fmt"
	"testing"
)

// benchPayload approximates a small study's export JSON (~4 KiB).
func benchPayload() []byte {
	p := make([]byte, 4096)
	for i := range p {
		p[i] = byte('a' + i%26)
	}
	return p
}

// BenchmarkAppend measures the append path with the default fsync batch.
func BenchmarkAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := benchPayload()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Record{
			Key:      fmt.Sprintf("bench-%09d", i),
			Series:   "bench",
			Label:    "run",
			UnixNano: int64(i),
			Payload:  payload,
		}
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSyncEvery1 measures the worst-case durable append:
// fsync on every record.
func BenchmarkAppendSyncEvery1(b *testing.B) {
	s, err := Open(b.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := benchPayload()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Record{Key: fmt.Sprintf("bench-%09d", i), Payload: payload}
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReopenIndex measures rebuilding the index by scanning
// segments at open, for a store of 1000 records.
func BenchmarkReopenIndex(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload()
	const n = 1000
	for i := 0; i < n; i++ {
		r := Record{Key: fmt.Sprintf("bench-%09d", i), Series: "bench", Payload: payload}
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(s.index); got != n {
			b.Fatalf("index has %d records, want %d", got, n)
		}
		s.Close()
	}
}

// BenchmarkGet measures random payload reads through the lazy segment
// readers.
func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := benchPayload()
	const n = 1000
	for i := 0; i < n; i++ {
		r := Record{Key: fmt.Sprintf("bench-%09d", i), Payload: payload}
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := s.Get(fmt.Sprintf("bench-%09d", i%n))
		if !ok || err != nil {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}
