package store

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func openStreamTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "db"), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStreamRoundTrip(t *testing.T) {
	src := openStreamTestStore(t)
	recs := []Record{
		{Key: "aaa", Series: "s1", Label: "r1", UnixNano: 100, Payload: []byte(`{"a":1}`)},
		{Key: "bbb", Series: "s1", Label: "r2", UnixNano: 200, Payload: []byte(`{"b":2}`)},
		{Key: "ccc", Label: "r3", UnixNano: 300, Payload: []byte(`{"c":3}`)},
	}
	for _, r := range recs {
		if err := src.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	n, err := src.ExportRecords(nil, &buf)
	if err != nil || n != 3 {
		t.Fatalf("ExportRecords = %d, %v", n, err)
	}

	dst := openStreamTestStore(t)
	applied, skipped, err := dst.ImportFrames(bytes.NewReader(buf.Bytes()))
	if err != nil || applied != 3 || skipped != 0 {
		t.Fatalf("ImportFrames = %d applied, %d skipped, %v", applied, skipped, err)
	}
	for _, r := range recs {
		got, ok, err := dst.Get(r.Key)
		if err != nil || !ok || !bytes.Equal(got, r.Payload) {
			t.Fatalf("Get(%s) after import = %q, %v, %v", r.Key, got, ok, err)
		}
		m, _ := dst.GetMeta(r.Key)
		if m.Series != r.Series || m.Label != r.Label || m.UnixNano != r.UnixNano {
			t.Fatalf("meta mismatch after import: %+v vs %+v", m, r)
		}
	}

	// Re-importing the same stream is a no-op: idempotent replication.
	applied, skipped, err = dst.ImportFrames(bytes.NewReader(buf.Bytes()))
	if err != nil || applied != 0 || skipped != 3 {
		t.Fatalf("re-import = %d applied, %d skipped, %v", applied, skipped, err)
	}
}

func TestStreamFilter(t *testing.T) {
	src := openStreamTestStore(t)
	for _, r := range []Record{
		{Key: "k1", Series: "keep", UnixNano: 1, Payload: []byte("x")},
		{Key: "k2", Series: "drop", UnixNano: 2, Payload: []byte("y")},
		{Key: "k3", Series: "keep", UnixNano: 3, Payload: []byte("z")},
	} {
		if err := src.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	n, err := src.ExportRecords(func(m Meta) bool { return m.Series == "keep" }, &buf)
	if err != nil || n != 2 {
		t.Fatalf("filtered export = %d, %v", n, err)
	}
	dst := openStreamTestStore(t)
	if applied, _, err := dst.ImportFrames(&buf); err != nil || applied != 2 {
		t.Fatalf("import = %d, %v", applied, err)
	}
	if _, ok, _ := dst.Get("k2"); ok {
		t.Fatal("filtered-out key leaked into the stream")
	}
}

func TestImportSupersede(t *testing.T) {
	dst := openStreamTestStore(t)
	if err := dst.Append(Record{Key: "k", UnixNano: 500, Payload: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	// Older copy arriving late (e.g. rebalance retry) must not clobber.
	if ok, err := dst.ImportRecord(Record{Key: "k", UnixNano: 100, Payload: []byte("old")}); ok || err != nil {
		t.Fatalf("stale import applied: %v, %v", ok, err)
	}
	if got, _, _ := dst.Get("k"); string(got) != "new" {
		t.Fatalf("payload clobbered by stale import: %q", got)
	}
	// Same-time re-delivery is also a skip.
	if ok, _ := dst.ImportRecord(Record{Key: "k", UnixNano: 500, Payload: []byte("new")}); ok {
		t.Fatal("same-time re-delivery applied")
	}
	// A genuinely newer copy supersedes.
	if ok, err := dst.ImportRecord(Record{Key: "k", UnixNano: 900, Payload: []byte("newer")}); !ok || err != nil {
		t.Fatalf("newer import skipped: %v, %v", ok, err)
	}
	if got, _, _ := dst.Get("k"); string(got) != "newer" {
		t.Fatalf("newer import not visible: %q", got)
	}
}

func TestImportBadFrame(t *testing.T) {
	var buf bytes.Buffer
	good := EncodeFrame(nil, Record{Key: "ok", UnixNano: 1, Payload: []byte("p")}, 1)
	buf.Write(good)
	bad := EncodeFrame(nil, Record{Key: "bad", UnixNano: 2, Payload: []byte("q")}, 2)
	bad[len(bad)-1] ^= 0xff // corrupt the payload under the CRC
	buf.Write(bad)

	dst := openStreamTestStore(t)
	applied, _, err := dst.ImportFrames(&buf)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame error = %v, want ErrBadFrame", err)
	}
	if applied != 1 {
		t.Fatalf("frames before the corruption: applied = %d, want 1", applied)
	}
	if _, ok, _ := dst.Get("ok"); !ok {
		t.Fatal("good frame before corruption was not applied")
	}

	// A truncated stream (cut mid-frame) is also ErrBadFrame, not EOF.
	if _, _, err := ReadFrame(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame error = %v, want ErrBadFrame", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
}
