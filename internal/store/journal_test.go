package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"perftrack/internal/faults"
)

func mustOpenJournal(t *testing.T, dir string, opts JournalOptions) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", dir, err)
	}
	return j
}

func intentKey(i int) string     { return fmt.Sprintf("job-%04d", i) }
func intentPayload(i int) []byte { return []byte(fmt.Sprintf(`{"job":%d}`, i)) }

// TestJournalRoundtrip: intents become pending, resolutions clear them,
// and both survive a reopen.
func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1})
	for i := 0; i < 6; i++ {
		if err := j.Intent(intentKey(i), intentPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Resolve(intentKey(1), "", true); err != nil {
		t.Fatal(err)
	}
	if err := j.Resolve(intentKey(3), "boom", false); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 5}
	check := func(j *Journal, where string) {
		t.Helper()
		p := j.Pending()
		if len(p) != len(want) {
			t.Fatalf("%s: %d pending, want %d (%v)", where, len(p), len(want), p)
		}
		for k, i := range want {
			if p[k].Key != intentKey(i) || !bytes.Equal(p[k].Payload, intentPayload(i)) {
				t.Fatalf("%s: pending[%d] = %+v, want job %d", where, k, p[k], i)
			}
		}
	}
	check(j, "live")
	j.Close()
	j2 := mustOpenJournal(t, dir, JournalOptions{})
	defer j2.Close()
	check(j2, "reopened")
	if st := j2.Stats(); st.Generations != 1 {
		t.Fatalf("reopen left %d generations, want 1 (open compacts)", st.Generations)
	}
}

// TestJournalCompaction: resolving past CompactEvery rewrites pending
// intents into a single fresh generation and deletes history.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1, CompactEvery: 10})
	for i := 0; i < 30; i++ {
		if err := j.Intent(intentKey(i), intentPayload(i)); err != nil {
			t.Fatal(err)
		}
		if i%3 != 0 { // resolve two thirds
			if err := j.Resolve(intentKey(i), "", true); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 20 resolutions with CompactEvery=10: %+v", st)
	}
	if st.Generations != 1 {
		t.Fatalf("%d generations on disk, want 1", st.Generations)
	}
	if st.Pending != 10 {
		t.Fatalf("%d pending, want 10", st.Pending)
	}
	j.Close()
	j2 := mustOpenJournal(t, dir, JournalOptions{})
	defer j2.Close()
	if got := len(j2.Pending()); got != 10 {
		t.Fatalf("reopen sees %d pending, want 10", got)
	}
}

// TestJournalRecoveryEveryOffset is the store's truncate-at-every-byte
// contract applied to the journal: for a generation holding a mix of
// intents and resolutions, truncation at EVERY byte offset must open
// cleanly and recover exactly the pending set implied by the entries
// whose frames survived.
func TestJournalRecoveryEveryOffset(t *testing.T) {
	master := t.TempDir()
	j := mustOpenJournal(t, master, JournalOptions{SyncEvery: 1})
	// Entry sequence: intent 0, intent 1, done 0, intent 2, fail 1.
	type op struct {
		typ string
		i   int
	}
	ops := []op{
		{entryIntent, 0}, {entryIntent, 1}, {entryDone, 0},
		{entryIntent, 2}, {entryFail, 1},
	}
	for _, o := range ops {
		var err error
		switch o.typ {
		case entryIntent:
			err = j.Intent(intentKey(o.i), intentPayload(o.i))
		case entryDone:
			err = j.Resolve(intentKey(o.i), "", true)
		case entryFail:
			err = j.Resolve(intentKey(o.i), "err", false)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	genPath := filepath.Join(master, genName(0))
	full, err := os.ReadFile(genPath)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute frame boundaries by re-scanning the file.
	var boundaries []int64
	{
		f, _ := os.Open(genPath)
		var off int64
		for {
			_, _, n, err := readRecord(f)
			if err != nil {
				break
			}
			off += n
			boundaries = append(boundaries, off)
		}
		f.Close()
	}
	if len(boundaries) != len(ops) || boundaries[len(ops)-1] != int64(len(full)) {
		t.Fatalf("expected %d frames spanning %d bytes, got %v", len(ops), len(full), boundaries)
	}

	// pendingAfter simulates applying the first k ops.
	pendingAfter := func(k int) map[int]bool {
		p := map[int]bool{}
		for _, o := range ops[:k] {
			if o.typ == entryIntent {
				p[o.i] = true
			} else {
				delete(p, o.i)
			}
		}
		return p
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, genName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("cut=%d: OpenJournal failed: %v", cut, err)
		}
		k := 0
		for k < len(boundaries) && boundaries[k] <= cut {
			k++
		}
		want := pendingAfter(k)
		got := j2.Pending()
		if len(got) != len(want) {
			t.Fatalf("cut=%d: %d pending, want %d", cut, len(got), len(want))
		}
		for _, p := range got {
			var i int
			fmt.Sscanf(p.Key, "job-%d", &i)
			if !want[i] || !bytes.Equal(p.Payload, intentPayload(i)) {
				t.Fatalf("cut=%d: unexpected pending %+v", cut, p)
			}
		}
		// The journal must stay writable after recovery.
		if cut%89 == 0 {
			if err := j2.Intent("post", []byte("{}")); err != nil {
				t.Fatalf("cut=%d: intent after recovery: %v", cut, err)
			}
		}
		j2.Close()
	}
}

// TestJournalIntentDurableUnderFaults: with fsync errors injected, every
// Intent that returned nil must survive a reopen; Intents that errored
// must not linger as pending forever (they resolve or were never acked).
func TestJournalIntentDurableUnderFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{SyncFailEveryN: 3})
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1, FS: ffs})
	acked := map[string]bool{}
	for i := 0; i < 20; i++ {
		if err := j.Intent(intentKey(i), intentPayload(i)); err == nil {
			acked[intentKey(i)] = true
		}
	}
	if len(acked) == 0 || len(acked) == 20 {
		t.Fatalf("want a mix of acked and refused intents, got %d/20", len(acked))
	}
	j.Close()
	j2 := mustOpenJournal(t, dir, JournalOptions{})
	defer j2.Close()
	got := map[string]bool{}
	for _, p := range j2.Pending() {
		got[p.Key] = true
	}
	for k := range acked {
		if !got[k] {
			t.Fatalf("acked intent %s lost across reopen", k)
		}
	}
}

// TestJournalShortWriteHeals: torn intent writes are healed and the
// journal keeps accepting; acknowledged intents survive reopen.
func TestJournalShortWriteHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.FSFaults{ShortWriteEveryN: 4})
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1, FS: ffs})
	acked := map[string]bool{}
	for i := 0; i < 24; i++ {
		for a := 0; a < 3; a++ {
			if err := j.Intent(intentKey(i), intentPayload(i)); err == nil {
				acked[intentKey(i)] = true
				break
			}
		}
	}
	if len(acked) != 24 {
		t.Fatalf("only %d/24 intents acked after retries", len(acked))
	}
	if st := j.Stats(); st.WriteHeals == 0 {
		t.Fatal("no heals despite injected short writes")
	}
	j.Close()
	j2 := mustOpenJournal(t, dir, JournalOptions{})
	defer j2.Close()
	if got := len(j2.Pending()); got != 24 {
		t.Fatalf("reopen sees %d pending, want 24", got)
	}
}

// flakyFS injects exactly one short write, when armed. Unlike
// FaultFS.ShortWriteEveryN it can target a single append precisely,
// leaving the open-time compaction writes untouched.
type flakyFS struct {
	faults.OS
	armed *bool
}

func (f flakyFS) OpenFile(path string, flag int, perm os.FileMode) (faults.File, error) {
	base, err := f.OS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return flakyFile{File: base, armed: f.armed}, nil
}

type flakyFile struct {
	faults.File
	armed *bool
}

func (f flakyFile) Write(p []byte) (int, error) {
	if *f.armed && len(p) > 1 {
		*f.armed = false
		n, _ := f.File.Write(p[:len(p)/2])
		return n, io.ErrShortWrite
	}
	return f.File.Write(p)
}

// TestJournalHealAfterCompaction: the append handle adopted after a
// compaction — including the open-time compaction every restart with
// prior content performs — must be in append mode. A failed partial
// append heals by truncating the generation back to its intact prefix;
// a stale non-append offset would make the next write land past the new
// end of file, punching a zero-filled hole that recovery reads as the
// end of the journal and truncating away every fsynced intent after it.
func TestJournalHealAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1})
	for i := 0; i < 4; i++ {
		if err := j.Intent(intentKey(i), intentPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Reopen: the prior content forces the open-time compaction, so the
	// active handle is the post-compaction one.
	armed := false
	j2 := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1, FS: flakyFS{armed: &armed}})
	if st := j2.Stats(); st.Compactions != 1 {
		t.Fatalf("reopen performed %d compactions, want 1", st.Compactions)
	}
	if err := j2.Intent(intentKey(4), intentPayload(4)); err != nil {
		t.Fatal(err)
	}
	// One torn append, healed by truncation...
	armed = true
	if err := j2.Intent(intentKey(5), intentPayload(5)); err == nil {
		t.Fatal("torn intent unexpectedly succeeded")
	}
	if st := j2.Stats(); st.WriteHeals != 1 {
		t.Fatalf("write heals %d, want 1", st.WriteHeals)
	}
	// ...after which appends must continue at the healed end, not at the
	// torn handle's stale offset.
	for i := 5; i < 10; i++ {
		if err := j2.Intent(intentKey(i), intentPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()

	j3 := mustOpenJournal(t, dir, JournalOptions{})
	defer j3.Close()
	got := map[string]bool{}
	for _, p := range j3.Pending() {
		got[p.Key] = true
	}
	for i := 0; i < 10; i++ {
		if !got[intentKey(i)] {
			t.Fatalf("acked intent %s lost across heal on the compacted handle (pending: %v)", intentKey(i), got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("%d intents pending, want 10", len(got))
	}
}

// TestJournalSharesDirWithStore: journal generations and store segments
// coexist in one directory without seeing each other's files.
func TestJournalSharesDirWithStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: 1})
	j := mustOpenJournal(t, dir, JournalOptions{SyncEvery: 1})
	if err := s.Append(rec(1, "mix")); err != nil {
		t.Fatal(err)
	}
	if err := j.Intent("job-a", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	j.Close()
	s2 := mustOpen(t, dir, Options{})
	j2 := mustOpenJournal(t, dir, JournalOptions{})
	defer s2.Close()
	defer j2.Close()
	if _, ok, _ := s2.Get("key-0001"); !ok {
		t.Fatal("store record lost when sharing dir")
	}
	if len(j2.Pending()) != 1 {
		t.Fatal("journal intent lost when sharing dir")
	}
}
