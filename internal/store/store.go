// Package store is perfdb: a durable, content-addressed, append-only
// result store. trackd keeps its in-memory LRU for hot results, but every
// completed analysis is also appended here, so a daemon restart loses
// nothing and series of runs accumulate into the history the trajectory
// engine mines.
//
// Layout: a directory of segment files (perfdb-NNNNNN.seg) holding
// length-prefixed, CRC-checked records (see record.go). Writes only ever
// append to the newest segment; when it exceeds the size bound a new one
// is started. The in-memory index (key -> newest record location) is
// rebuilt by scanning the segments at open; a torn tail — the result of a
// crash mid-append — is truncated away rather than treated as fatal, so
// the store recovers exactly the prefix of intact records. Appending the
// same key again supersedes the older record; compaction rewrites live
// records into fresh segments and deletes the old ones, dropping
// superseded and corrupt data.
//
// Durability is batched: appends accumulate and fsync runs every
// SyncEvery records (or on Sync/Close), trading a bounded window of
// recent results against fsync-per-write latency. The trackd cache sits
// in front as a read-through layer, so the hot path never touches disk.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"perftrack/internal/faults"
)

// Options parametrises Open.
type Options struct {
	// MaxSegmentBytes bounds each segment file; the active segment rolls
	// over once it exceeds this (default 64 MiB).
	MaxSegmentBytes int64
	// SyncEvery batches fsync: the active segment is synced after this
	// many appends (default 8; 1 = sync every append).
	SyncEvery int
	// OnFsync, when set, observes the latency of every fsync (metrics
	// hook).
	OnFsync func(time.Duration)
	// FS is the filesystem the store operates on (default the real one).
	// Tests plug in faults.FaultFS here to exercise short writes, fsync
	// errors, ENOSPC and torn renames under the store.
	FS faults.FS
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.FS == nil {
		o.FS = faults.OS{}
	}
	return o
}

// Stats is a snapshot of the store's state and cumulative activity.
type Stats struct {
	// Records is the number of live (non-superseded) records.
	Records int
	// Segments is the number of segment files.
	Segments int
	// Bytes is the total on-disk size of all segments.
	Bytes int64
	// Appends, Fsyncs and Compactions count cumulative operations since
	// open.
	Appends     uint64
	Fsyncs      uint64
	Compactions uint64
	// Superseded counts records replaced by a newer append to the same
	// key and still occupying disk (compaction drops them and resets
	// this).
	Superseded uint64
	// CorruptDropped counts records dropped at open because their CRC or
	// structure was invalid; TornTruncated counts bytes cut off the tail
	// of the newest segment after a crash mid-append.
	CorruptDropped uint64
	TornTruncated  int64
	// WriteHeals counts failed appends whose torn bytes were cut back
	// off the active segment (or sealed behind a rotation) so later
	// appends never land behind garbage.
	WriteHeals uint64
}

// entry locates one live record.
type entry struct {
	seg  int // segment id
	off  int64
	size int64 // framed size on disk
	meta Meta
}

// Store is an open perfdb directory. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	readers  map[int]faults.File // segment id -> read handle
	segSizes map[int]int64       // segment id -> byte size
	active   faults.File         // newest segment, opened for append
	activeID int
	dirty    int // appends since the last fsync
	seq      uint64
	index    map[string]entry
	stats    Stats
	closed   bool
}

const segPrefix, segSuffix = "perfdb-", ".seg"

func segName(id int) string { return fmt.Sprintf("%s%06d%s", segPrefix, id, segSuffix) }

// Open scans dir (created if missing), rebuilds the index, truncates any
// torn tail off the newest segment, and readies the store for appends.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		readers:  map[int]faults.File{},
		segSizes: map[int]int64{},
		activeID: -1,
		index:    map[string]entry{},
	}
	ids, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := s.scanSegment(id, i == len(ids)-1); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := s.openActive(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// listSegments returns the segment ids present in dir, ascending.
func listSegments(fsys faults.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	var ids []int
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// scanSegment walks one segment, folding its records into the index.
// Scanning stops at the first invalid record: for the newest segment the
// tail beyond that point is truncated away (crash recovery); for older
// segments the remainder is counted corrupt and skipped (compaction will
// drop it).
func (s *Store) scanSegment(id int, newest bool) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := s.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", path, err)
	}
	var off int64
	for {
		rec, seq, n, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			fi, statErr := f.Stat()
			if statErr != nil {
				f.Close()
				return statErr
			}
			if newest {
				// Torn or trailing-corrupt tail after a crash: cut it off
				// so the segment ends at the last intact record.
				f.Close()
				if truncErr := s.opts.FS.Truncate(path, off); truncErr != nil {
					return fmt.Errorf("store: truncating torn tail of %s: %w", path, truncErr)
				}
				s.stats.TornTruncated += fi.Size() - off
				s.segSizes[id] = off
				s.recordSegment(id, off)
				return nil
			}
			// Mid-history corruption: drop the rest of this segment.
			s.stats.CorruptDropped++
			off = fi.Size()
			break
		}
		s.indexRecord(rec, seq, entry{seg: id, off: off, size: n})
		off += n
	}
	f.Close()
	s.recordSegment(id, off)
	return nil
}

// recordSegment registers a scanned segment's size and read handle
// bookkeeping (handles open lazily).
func (s *Store) recordSegment(id int, size int64) {
	s.segSizes[id] = size
	if id > s.activeID {
		s.activeID = id
	}
}

// indexRecord folds one scanned or appended record into the index,
// superseding older sequence numbers.
func (s *Store) indexRecord(rec Record, seq uint64, at entry) {
	if seq > s.seq {
		s.seq = seq
	}
	at.meta = Meta{
		Key: rec.Key, Series: rec.Series, Label: rec.Label,
		UnixNano: rec.UnixNano, Seq: seq, Size: len(rec.Payload),
	}
	if old, ok := s.index[rec.Key]; ok {
		if old.meta.Seq >= seq {
			return // stale duplicate (e.g. pre-compaction copy)
		}
		s.stats.Superseded++
	}
	s.index[rec.Key] = at
}

// openActive opens (or creates) the append segment. A brand-new store
// starts at segment 0; otherwise the newest scanned segment continues to
// fill until it crosses the size bound.
func (s *Store) openActive() error {
	if s.activeID < 0 {
		s.activeID = 0
	}
	if s.segSizes[s.activeID] >= s.opts.MaxSegmentBytes {
		s.activeID++
	}
	if _, ok := s.segSizes[s.activeID]; !ok {
		s.segSizes[s.activeID] = 0
	}
	path := filepath.Join(s.dir, segName(s.activeID))
	f, err := s.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening active segment: %w", err)
	}
	s.active = f
	return nil
}

// Append durably stores rec, superseding any earlier record with the same
// key. The write lands in the active segment immediately; fsync is
// batched per Options.SyncEvery.
func (s *Store) Append(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("store: record without key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.active == nil {
		// A previous failed append sealed the segment and could not open
		// the next one (e.g. transient ENOSPC); retry here.
		if err := s.openActive(); err != nil {
			return err
		}
	}
	s.seq++
	seq := s.seq
	buf := encodeRecord(nil, rec, seq)

	off := s.segSizes[s.activeID]
	if _, err := s.active.Write(buf); err != nil {
		// The segment may now hold a torn frame. Heal before reporting the
		// failure so the next append never lands behind garbage bytes.
		s.healLocked(off)
		return fmt.Errorf("store: appending: %w", err)
	}
	s.segSizes[s.activeID] = off + int64(len(buf))
	s.indexRecord(rec, seq, entry{seg: s.activeID, off: off, size: int64(len(buf))})
	s.stats.Appends++
	s.dirty++

	if s.dirty >= s.opts.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.segSizes[s.activeID] >= s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// syncLocked fsyncs the active segment; callers hold s.mu.
func (s *Store) syncLocked() error {
	if s.dirty == 0 || s.active == nil {
		return nil
	}
	t0 := time.Now()
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.stats.Fsyncs++
	s.dirty = 0
	if s.opts.OnFsync != nil {
		s.opts.OnFsync(time.Since(t0))
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	delete(s.readers, s.activeID) // stale read handle may cache old size
	s.activeID++
	s.segSizes[s.activeID] = 0
	path := filepath.Join(s.dir, segName(s.activeID))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotating segment: %w", err)
	}
	s.active = f
	return nil
}

// healLocked recovers the active segment after a failed append that may
// have persisted a torn frame at offset off. Preferred cure: truncate
// the segment back to off — the O_APPEND handle then continues exactly
// where the last intact record ended. If even the truncate fails (the
// injectors model disks where everything is failing), the segment is
// sealed at its intact prefix and a fresh one started, so the torn bytes
// are left behind a boundary the scanner never crosses mid-segment.
// Callers hold s.mu.
func (s *Store) healLocked(off int64) {
	path := filepath.Join(s.dir, segName(s.activeID))
	if err := s.opts.FS.Truncate(path, off); err == nil {
		s.stats.WriteHeals++
		s.segSizes[s.activeID] = off
		return
	}
	// Seal: sync what we can, close, and move on to a new segment. The
	// torn frame stays on disk but scanning stops at it and Compact drops
	// it, matching the mid-history-corruption path.
	s.active.Sync()
	s.active.Close()
	delete(s.readers, s.activeID)
	s.segSizes[s.activeID] = off
	s.stats.WriteHeals++
	s.activeID++
	s.segSizes[s.activeID] = 0
	s.dirty = 0
	s.active = nil
	if err := s.openActive(); err != nil {
		s.active = nil // next Append retries via its nil check
	}
}

// Sync forces any batched appends to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

// reader returns a read handle for segment id, opening it lazily.
// Callers hold s.mu.
func (s *Store) reader(id int) (faults.File, error) {
	if f, ok := s.readers[id]; ok {
		return f, nil
	}
	f, err := s.opts.FS.OpenFile(filepath.Join(s.dir, segName(id)), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	s.readers[id] = f
	return f, nil
}

// Get returns the newest payload stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	rec, err := s.readAtLocked(e)
	if err != nil {
		return nil, false, err
	}
	return rec.Payload, true, nil
}

// GetMeta returns the index entry for key without touching the payload.
func (s *Store) GetMeta(key string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	return e.meta, ok
}

// readAtLocked decodes the record at e; callers hold s.mu. Batched writes
// may not be synced yet, but they are visible to reads: the data is in
// the file (or page cache) as soon as Append returns.
func (s *Store) readAtLocked(e entry) (Record, error) {
	f, err := s.reader(e.seg)
	if err != nil {
		return Record{}, err
	}
	rec, _, _, err := readRecord(io.NewSectionReader(f, e.off, e.size))
	if err != nil {
		return Record{}, fmt.Errorf("store: record at seg %d off %d: %w", e.seg, e.off, err)
	}
	return rec, nil
}

// List returns the metadata of every live record, oldest append first.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.index))
	for _, e := range s.index {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Series returns the live records belonging to the named series, oldest
// append first — the input the trajectory engine chains over.
func (s *Store) Series(name string) []Meta {
	all := s.List()
	out := all[:0:0]
	for _, m := range all {
		if m.Series == name {
			out = append(out, m)
		}
	}
	return out
}

// SeriesNames returns the distinct non-empty series names present.
func (s *Store) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, e := range s.index {
		if e.meta.Series != "" {
			seen[e.meta.Series] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveKey resolves a possibly abbreviated key: an exact match wins,
// otherwise a unique prefix of a live key.
func (s *Store) ResolveKey(prefix string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[prefix]; ok {
		return prefix, nil
	}
	var found string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			if found != "" {
				return "", fmt.Errorf("store: key prefix %q is ambiguous", prefix)
			}
			found = k
		}
	}
	if found == "" {
		return "", fmt.Errorf("store: no result with key %q", prefix)
	}
	return found, nil
}

// Stats snapshots the store state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.index)
	st.Segments = len(s.segSizes)
	for _, sz := range s.segSizes {
		st.Bytes += sz
	}
	return st
}

// Compact rewrites every live record, in sequence order, into fresh
// segments and deletes the old files: superseded records, corrupt
// regions and torn tails all disappear. Sequence numbers are preserved,
// so a crash between writing the new segments and deleting the old ones
// only leaves harmless duplicates (the index keeps the newest copy of
// each seq at the next open).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := s.syncLocked(); err != nil {
		return err
	}

	live := make([]entry, 0, len(s.index))
	for _, e := range s.index {
		live = append(live, e)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].meta.Seq < live[j].meta.Seq })

	oldIDs := make([]int, 0, len(s.segSizes))
	for id := range s.segSizes {
		oldIDs = append(oldIDs, id)
	}
	sort.Ints(oldIDs)

	// Write live records into brand-new segments numbered past every
	// existing one.
	newFirst := s.activeID + 1
	id := newFirst
	var (
		f       faults.File
		written int64
		err     error
	)
	openSeg := func() error {
		f, err = s.opts.FS.OpenFile(filepath.Join(s.dir, segName(id)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		written = 0
		return err
	}
	closeSeg := func() error {
		if f == nil {
			return nil
		}
		t0 := time.Now()
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		s.stats.Fsyncs++
		if s.opts.OnFsync != nil {
			s.opts.OnFsync(time.Since(t0))
		}
		return f.Close()
	}
	if err := openSeg(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	newIndex := make(map[string]entry, len(live))
	newSizes := map[int]int64{}
	for _, e := range live {
		rec, rerr := s.readAtLocked(e)
		if rerr != nil {
			// Unreadable under its index entry: drop it rather than abort
			// the whole compaction.
			s.stats.CorruptDropped++
			continue
		}
		if written >= s.opts.MaxSegmentBytes {
			newSizes[id] = written
			if err := closeSeg(); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
			id++
			if err := openSeg(); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
		}
		buf := encodeRecord(nil, rec, e.meta.Seq)
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		newIndex[rec.Key] = entry{seg: id, off: written, size: int64(len(buf)), meta: e.meta}
		written += int64(len(buf))
	}
	newSizes[id] = written
	if err := closeSeg(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}

	// Swap: close every old handle, delete old segments, adopt the new
	// layout, and reopen the append segment.
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	for _, rf := range s.readers {
		rf.Close()
	}
	s.readers = map[int]faults.File{}
	for _, old := range oldIDs {
		if err := s.opts.FS.Remove(filepath.Join(s.dir, segName(old))); err != nil {
			return fmt.Errorf("store: compact: removing old segment: %w", err)
		}
	}
	s.index = newIndex
	s.segSizes = newSizes
	s.activeID = id
	s.dirty = 0
	s.stats.Superseded = 0
	s.stats.Compactions++
	path := filepath.Join(s.dir, segName(s.activeID))
	af, err := s.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopening active segment: %w", err)
	}
	s.active = af
	return nil
}

// Close syncs and releases every file handle. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.syncLocked(); err != nil && first == nil {
			first = err
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
		s.active = nil
	}
	for _, f := range s.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	return first
}
