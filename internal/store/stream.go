package store

import (
	"errors"
	"fmt"
	"io"
)

// Segment streaming: the wire format used to replicate perfdb records
// between cluster nodes is exactly the on-disk record framing (length
// prefix + CRC32-C + versioned body, see record.go). Reusing the frame
// means a replica can verify integrity of every transferred record with
// the same code path that guards the local segments, and a streamed
// batch is byte-compatible with a segment file.
//
// Sequence numbers are node-local: a frame carries the sender's seq for
// debugging, but the importer ignores it and lets its own store assign a
// fresh one. Records are content-addressed (key = input hash) and the
// payload is byte-deterministic, so cross-node conflicts cannot diverge:
// import keeps whichever copy has the newest submission time.

// ErrBadFrame reports a torn or corrupt frame in a replication stream.
var ErrBadFrame = errors.New("store: bad stream frame")

// EncodeFrame appends the framed wire encoding of rec to buf and returns
// the extended slice. seq is advisory (the sender's sequence number);
// importers assign their own.
func EncodeFrame(buf []byte, rec Record, seq uint64) []byte {
	return encodeRecord(buf, rec, seq)
}

// ReadFrame reads one framed record from r. It returns io.EOF at a clean
// stream end and ErrBadFrame (wrapped) for torn or corrupt frames.
func ReadFrame(r io.Reader) (Record, uint64, error) {
	rec, seq, _, err := readRecord(r)
	if err == io.EOF {
		return Record{}, 0, io.EOF
	}
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return rec, seq, nil
}

// ExportRecords streams every live record whose metadata passes filter
// (nil = all) to w as wire frames, oldest append first, and returns the
// number of records written. The snapshot is taken once; appends racing
// the export are not included.
func (s *Store) ExportRecords(filter func(Meta) bool, w io.Writer) (int, error) {
	s.mu.Lock()
	live := make([]entry, 0, len(s.index))
	for _, e := range s.index {
		if filter == nil || filter(e.meta) {
			live = append(live, e)
		}
	}
	s.mu.Unlock()
	sortEntriesBySeq(live)

	var buf []byte
	n := 0
	for _, e := range live {
		s.mu.Lock()
		rec, err := s.readAtLocked(e)
		s.mu.Unlock()
		if err != nil {
			// Superseded-then-compacted while exporting, or unreadable:
			// skip rather than abort the stream.
			continue
		}
		buf = EncodeFrame(buf[:0], rec, e.meta.Seq)
		if _, err := w.Write(buf); err != nil {
			return n, fmt.Errorf("store: exporting records: %w", err)
		}
		n++
	}
	return n, nil
}

func sortEntriesBySeq(es []entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].meta.Seq < es[j-1].meta.Seq; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// ImportRecord folds one replicated record into the store. The record is
// skipped (false, nil) when the store already holds the key at the same
// or a newer submission time — replication pushes are idempotent and
// re-deliveries after a crash or rebalance retry are free.
func (s *Store) ImportRecord(rec Record) (bool, error) {
	if rec.Key == "" {
		return false, fmt.Errorf("store: imported record without key")
	}
	if m, ok := s.GetMeta(rec.Key); ok && m.UnixNano >= rec.UnixNano {
		return false, nil
	}
	if err := s.Append(rec); err != nil {
		return false, err
	}
	return true, nil
}

// ImportFrames reads wire frames from r until EOF, importing each via
// ImportRecord, and returns how many were applied vs skipped as already
// present. A torn or corrupt frame aborts the import at that point with
// ErrBadFrame; everything before it has already been applied (frames are
// independent, so a partial import is safe and the sender just retries).
func (s *Store) ImportFrames(r io.Reader) (applied, skipped int, err error) {
	for {
		rec, _, err := ReadFrame(r)
		if err == io.EOF {
			return applied, skipped, nil
		}
		if err != nil {
			return applied, skipped, err
		}
		ok, err := s.ImportRecord(rec)
		if err != nil {
			return applied, skipped, err
		}
		if ok {
			applied++
		} else {
			skipped++
		}
	}
}
