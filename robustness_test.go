package perftrack

// Robustness experiments beyond the paper: how tolerant is the tracking
// algorithm to per-burst noise and to the clustering radius? The paper
// motivates the multi-evaluator design with "performance variations may
// result in large changes of behaviour"; these tests quantify the margin.

import (
	"bytes"
	"fmt"
	"testing"

	"perftrack/internal/apps"
	"perftrack/internal/faults"
	"perftrack/internal/trace"
)

func runSynthetic(t testing.TB, p apps.SyntheticParams) *Result {
	st := apps.Synthetic(p)
	res, err := RunStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNoiseRobustness sweeps the per-burst IPC jitter: tracking must stay
// perfect through realistic noise (a few percent) and may only then
// degrade.
func TestNoiseRobustness(t *testing.T) {
	for _, noise := range []float64{0.005, 0.01, 0.02, 0.03} {
		res := runSynthetic(t, apps.SyntheticParams{NoiseIPC: noise, Seed: 101})
		score := res.Validate()
		if res.Coverage < 0.99 || score.ARI < 0.98 {
			t.Errorf("noise %.1f%%: coverage %.2f, ARI %.3f — tracking should tolerate this",
				100*noise, res.Coverage, score.ARI)
		}
	}
	// At extreme noise the clusters smear together; the run must still
	// complete without error (graceful degradation, not a crash).
	res := runSynthetic(t, apps.SyntheticParams{NoiseIPC: 0.25, Seed: 101})
	if len(res.Frames) != 4 {
		t.Errorf("extreme-noise run incomplete: %d frames", len(res.Frames))
	}
}

// TestEpsSensitivity verifies the result does not hinge on the exact
// DBSCAN radius: the WRF reproduction holds untouched across a ±15% band
// around the default (0.06-0.08 around 0.07), and degrades gracefully —
// nearby regions merge rather than the analysis collapsing — just beyond
// it.
func TestEpsSensitivity(t *testing.T) {
	st, err := CatalogStudy("WRF")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	track := func(eps float64) *Result {
		cfg := st.Track
		cfg.Cluster.Eps = eps
		res, err := Track(traces, cfg)
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		return res
	}
	for _, eps := range []float64{0.05, 0.06, 0.07} {
		res := track(eps)
		if res.SpanningCount != 12 || res.Coverage < 0.99 {
			t.Errorf("eps %v: %d regions at %.0f%% coverage, want 12 at 100%%",
				eps, res.SpanningCount, 100*res.Coverage)
		}
	}
	// Past the band, the acceptable failure mode is in-frame cluster
	// merging: coverage stays high and the partition only coarsens (the
	// merged regions lower purity proportionally, but tracking never
	// crosses identities — the per-region majority still dominates).
	res := track(0.09)
	if res.Coverage < 0.85 {
		t.Errorf("eps 0.09 collapsed: coverage %.2f", res.Coverage)
	}
	if score := res.Validate(); score.Purity < 0.7 {
		t.Errorf("eps 0.09 confused regions: purity %.3f", score.Purity)
	}
}

// TestDriftFollowing verifies the displacement evaluator's core
// assumption: smooth drift across many frames stays tracked without any
// call-stack help.
func TestDriftFollowing(t *testing.T) {
	st := apps.Synthetic(apps.SyntheticParams{
		FrameCount:    8,
		DriftPerFrame: 0.03,
		Seed:          202,
	})
	cfg := st.Track
	cfg.DisableCallstack = true // displacement + SPMD + sequence only
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Track(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.99 {
		t.Errorf("smooth drift lost without callstacks: coverage %.2f", res.Coverage)
	}
	if score := res.Validate(); score.ARI < 0.98 {
		t.Errorf("drift ARI = %.3f", score.ARI)
	}
}

// TestScalabilityExtension follows WRF across five rank counts (the
// "program scalability" analysis the paper's conclusions mention) and
// validates the prediction extension against the held-out largest run.
func TestScalabilityExtension(t *testing.T) {
	st := apps.WRFScalability()
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Track(traces, st.Track)
	if err != nil {
		t.Fatal(err)
	}
	if full.SpanningCount != 12 || full.Coverage < 0.99 {
		t.Fatalf("scalability tracking: %d regions at %.0f%%", full.SpanningCount, 100*full.Coverage)
	}
	if score := full.Validate(); score.ARI < 0.99 {
		t.Errorf("scalability ARI = %.3f", score.ARI)
	}

	// Prediction: fit on 32..256, predict instructions per rank at 512.
	fit, err := Track(traces[:4], st.Track)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 1; phase <= 6; phase++ {
		reg := fit.RegionByPhase(phase)
		if reg == nil {
			t.Fatalf("phase %d untracked in prefix", phase)
		}
		pred, err := fit.Predict(reg.ID, Instructions, st.ParamValues[:4], st.ParamValues[4])
		if err != nil {
			t.Fatal(err)
		}
		fullReg := full.RegionByPhase(phase)
		rt, _ := full.Trend(fullReg.ID, Instructions)
		actual := rt.Means()[4]
		// Pure strong-scaling phases extrapolate almost exactly; phase 1
		// deviates slightly because its ~5% work replication bends the
		// power law, but the fit still lands within 3%.
		if relErr := abs(pred.Power-actual) / actual; relErr > 0.03 {
			t.Errorf("phase %d prediction off by %.1f%%", phase, 100*relErr)
		}
		// The replicated phase must be the least power-law-like: its
		// fitted exponent is shallower than the ideal -1.
		if phase == 1 && pred.PowerModel.B <= -1 {
			t.Errorf("replicated phase exponent = %.4f, want shallower than -1", pred.PowerModel.B)
		}
	}
}

// faultStudies returns the two studies the fault matrix sweeps: the WRF
// reproduction and the synthetic ground-truth study.
func faultStudies(t *testing.T) []struct {
	name   string
	traces []*Trace
	cfg    Config
} {
	t.Helper()
	wrf, err := CatalogStudy("WRF")
	if err != nil {
		t.Fatal(err)
	}
	wrfTraces, err := SimulateStudy(wrf)
	if err != nil {
		t.Fatal(err)
	}
	synth := apps.Synthetic(apps.SyntheticParams{Seed: 404})
	synthTraces, err := SimulateStudy(synth)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name   string
		traces []*Trace
		cfg    Config
	}{
		{"WRF", wrfTraces, wrf.Track},
		{"Synthetic", synthTraces, synth.Track},
	}
}

// TestFaultMatrix sweeps every in-memory fault injector at moderate
// severity (10%) against the WRF reproduction and the synthetic study:
// tracking must stay essentially intact (coverage and ARI >= 0.90) and
// the diagnostics must account for what was dropped.
func TestFaultMatrix(t *testing.T) {
	for _, study := range faultStudies(t) {
		for _, inj := range faults.TraceInjectors(0.10) {
			t.Run(study.name+"/"+inj.Name(), func(t *testing.T) {
				corrupted := make([]*Trace, len(study.traces))
				injected := 0
				for i, tr := range study.traces {
					c, rep := inj.Apply(tr, uint64(1000+i))
					corrupted[i] = c
					injected += rep.Faults
				}
				if injected == 0 {
					t.Fatalf("%s injected nothing at 10%% severity", inj.Name())
				}
				res, err := Track(corrupted, study.cfg)
				if err != nil {
					t.Fatalf("tracking under %s failed: %v", inj.Name(), err)
				}
				if res.Coverage < 0.90 {
					t.Errorf("coverage %.2f < 0.90 under %s (%s)", res.Coverage, inj.Name(), res.Diagnostics.Summary())
				}
				if score := res.Validate(); score.ARI < 0.90 {
					t.Errorf("ARI %.3f < 0.90 under %s", score.ARI, inj.Name())
				}
				// Value-corrupting injectors must be fully accounted for by
				// the quarantine; structural injectors must not trigger it.
				switch inj.Name() {
				case "counter-zero", "counter-nan", "counter-inf":
					if res.Diagnostics.BurstsQuarantined != injected {
						t.Errorf("%s: quarantined %d bursts, injected %d",
							inj.Name(), res.Diagnostics.BurstsQuarantined, injected)
					}
				default:
					if res.Diagnostics.BurstsQuarantined != 0 {
						t.Errorf("%s: unexpectedly quarantined %d bursts (%v)",
							inj.Name(), res.Diagnostics.BurstsQuarantined, res.Diagnostics.QuarantinedBy)
					}
				}
			})
		}
		for _, inj := range faults.ByteInjectors(0.10) {
			t.Run(study.name+"/"+inj.Name(), func(t *testing.T) {
				// Serialised-form faults go through the lenient decoder, the
				// way a CLI user with corrupt files would run the analysis.
				decoded := make([]*Trace, len(study.traces))
				injected, skipped := 0, 0
				for i, tr := range study.traces {
					var buf bytes.Buffer
					if err := trace.Write(&buf, tr); err != nil {
						t.Fatal(err)
					}
					corrupt, rep := inj.ApplyBytes(buf.Bytes(), uint64(2000+i))
					injected += rep.Faults
					dec, diag, err := trace.ReadWith(bytes.NewReader(corrupt), trace.DecodeOptions{})
					if err != nil {
						t.Fatalf("lenient decode under %s failed: %v", inj.Name(), err)
					}
					if diag.Skipped() > rep.Faults {
						t.Errorf("trace %d: quarantined %d lines > %d injected faults", i, diag.Skipped(), rep.Faults)
					}
					skipped += diag.Skipped()
					decoded[i] = dec
				}
				if injected == 0 {
					t.Fatalf("%s injected nothing at 10%% severity", inj.Name())
				}
				res, err := Track(decoded, study.cfg)
				if err != nil {
					t.Fatalf("tracking under %s failed: %v", inj.Name(), err)
				}
				res.Diagnostics.AddDecode(skipped)
				if res.Coverage < 0.90 {
					t.Errorf("coverage %.2f < 0.90 under %s (%s)", res.Coverage, inj.Name(), res.Diagnostics.Summary())
				}
				if score := res.Validate(); score.ARI < 0.90 {
					t.Errorf("ARI %.3f < 0.90 under %s", score.ARI, inj.Name())
				}
				if res.Diagnostics.LinesSkipped != skipped {
					t.Errorf("diagnostics carry %d skipped lines, decode reported %d",
						res.Diagnostics.LinesSkipped, skipped)
				}
			})
		}
	}
}

// TestBridgeDeadMiddleExperiment drops the middle experiment of the
// five-point WRF scalability series: the tracker must bridge 64 tasks ->
// 256 tasks directly and keep every region spanning, so one lost
// experiment coarsens the trend instead of killing the study.
func TestBridgeDeadMiddleExperiment(t *testing.T) {
	st := apps.WRFScalability()
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("scalability series has %d traces", len(traces))
	}
	traces[2] = &Trace{Meta: traces[2].Meta} // the crashed run left only metadata
	res, err := Track(traces, st.Track)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d.FramesDegraded != 1 || d.FramesBridged != 1 {
		t.Fatalf("diagnostics: %+v", d)
	}
	if len(d.Bridges) != 1 || d.Bridges[0] != [2]int{1, 3} {
		t.Errorf("bridges: %v", d.Bridges)
	}
	if res.SpanningCount != 12 || res.Coverage < 0.99 {
		t.Errorf("bridged scalability: %d regions at %.0f%% coverage, want 12 at 100%%",
			res.SpanningCount, 100*res.Coverage)
	}
	if score := res.Validate(); score.ARI < 0.99 {
		t.Errorf("bridged ARI = %.3f", score.ARI)
	}
	// The trend across the surviving frames still carries the bridge: the
	// degraded frame contributes no members to any region.
	for _, reg := range res.Regions {
		if len(reg.Members[2]) != 0 {
			t.Errorf("region %d has members in the dead frame", reg.ID)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BenchmarkNoiseRobustness reports coverage and ARI across the noise
// sweep — the robustness curve as benchmark metrics.
func BenchmarkNoiseRobustness(b *testing.B) {
	for _, noise := range []float64{0.01, 0.05, 0.10} {
		noise := noise
		b.Run(pctName(noise), func(b *testing.B) {
			st := apps.Synthetic(apps.SyntheticParams{NoiseIPC: noise, Seed: 303})
			traces, err := SimulateStudy(st)
			if err != nil {
				b.Fatal(err)
			}
			var res *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = Track(traces, st.Track)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(res.Coverage, "coverage")
			b.ReportMetric(res.Validate().ARI, "ari")
		})
	}
}

func pctName(f float64) string {
	return fmt.Sprintf("noise=%.0fpct", 100*f)
}
