module perftrack

go 1.22
