package perftrack

import "testing"

// End-to-end members of the BenchmarkCore suite: the full tracking
// pipeline on the largest catalog studies. WRF is the heaviest frame pair
// (36864 bursts over 2 frames), Gromacs-evolution the longest sequence
// (20 frames). `make bench-core` records these in BENCH_core.json.

func BenchmarkCoreTrackWRF(b *testing.B) {
	p := prepare(b, "WRF")
	b.ReportAllocs()
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		res = p.trackOnce(b)
	}
	b.StopTimer()
	b.ReportMetric(res.Coverage, "coverage")
}

func BenchmarkCoreTrackEvolution(b *testing.B) {
	p := prepare(b, "Gromacs-evolution")
	b.ReportAllocs()
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		res = p.trackOnce(b)
	}
	b.StopTimer()
	b.ReportMetric(res.Coverage, "coverage")
}

func BenchmarkCoreBuildFramesWRF(b *testing.B) {
	p := prepare(b, "WRF")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFrames(p.traces, p.study.Track); err != nil {
			b.Fatal(err)
		}
	}
}
