package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"perftrack/internal/store"
	"perftrack/internal/trackeval"
)

// cmdEval runs the tracking-quality evaluation suite: the planted-truth
// scenario corpus is generated, tracked, and scored against its ground
// truth, and the scorecard is printed as per-family quality tables. With
// -gate the command fails when any scorecard floor is missed (the CI
// quality gate); with -store DIR the scorecard is filed into a perfdb
// directory under -series, where `trackctl regressions` (or a trackd
// serving that store) can judge quality history like any other series.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	seedList := fs.String("seeds", "", "comma-separated corpus seeds (default: the pinned sweep)")
	ranks := fs.Int("ranks", 0, "ranks per generated trace (0 = corpus default)")
	iters := fs.Int("iters", 0, "iterations per rank (0 = corpus default)")
	severity := fs.Float64("severity", 0, "fault severity for degraded scenarios (0 = corpus default)")
	gate := fs.Bool("gate", false, "exit non-zero when a quality floor is missed")
	timing := fs.Bool("timing", false, "also print the per-stage timing table")
	noDiag := fs.Bool("nodiag", false, "skip the root-cause diagnosis corpus")
	out := fs.String("o", "", "write the canonical scorecard JSON to this file")
	storeDir := fs.String("store", "", "append the scorecard document to this perfdb directory")
	series := fs.String("series", "trackeval", "series name used with -store")
	runLabel := fs.String("run", "", "run label used with -store (default: the unix time)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("eval takes no positional arguments")
	}

	opts := trackeval.Options{
		Ranks:         *ranks,
		Iters:         *iters,
		Severity:      *severity,
		SkipDiagnosis: *noDiag,
	}
	if *seedList != "" {
		for _, s := range strings.Split(*seedList, ",") {
			seed, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", s, err)
			}
			opts.Seeds = append(opts.Seeds, seed)
		}
	}

	card, err := trackeval.Evaluate(opts)
	if err != nil {
		return err
	}

	fmt.Println(card.Table())
	if *timing {
		fmt.Println(card.TimingTable())
	}

	if *out != "" {
		canon, err := card.CanonicalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, canon, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trackctl: scorecard written to %s\n", *out)
	}

	if *storeDir != "" {
		if err := fileScorecard(card, *storeDir, *series, *runLabel); err != nil {
			return err
		}
	}

	if *gate {
		if err := card.Gate(); err != nil {
			return fmt.Errorf("quality gate: %w", err)
		}
		fmt.Fprintln(os.Stderr, "trackctl: quality gate passed")
	}
	return nil
}

// fileScorecard appends the scorecard's perfdb document to a store
// directory. The key hashes payload AND run label: re-filing the same
// run supersedes it, while two commits with identical quality still
// occupy two points of the series history.
func fileScorecard(card *trackeval.Scorecard, dir, series, runLabel string) error {
	payload, err := card.PerfDBDocument()
	if err != nil {
		return err
	}
	now := time.Now()
	if runLabel == "" {
		runLabel = now.UTC().Format("2006-01-02T15:04:05Z")
	}
	h := sha256.New()
	h.Write(payload)
	h.Write([]byte(runLabel))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	rec := store.Record{
		Key:      hex.EncodeToString(sum[:16]),
		Series:   series,
		Label:    runLabel,
		UnixNano: now.UnixNano(),
		Payload:  payload,
	}
	if err := st.Append(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trackctl: scorecard filed in %s as %s (series %s, run %s)\n",
		dir, rec.Key, series, runLabel)
	return st.Close()
}
