package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// deadAddr returns a base URL whose port was just released: connecting
// to it is refused, the transport failure that triggers failover.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close()
	return addr
}

// fakeDaemon is just enough of trackd's job API for cmdSubmit: it
// accepts a job, serves 202 for pendingPolls result polls, then the
// result payload. Every request increments hits.
type fakeDaemon struct {
	hits         atomic.Int64
	resultPolls  atomic.Int64
	pendingPolls int64
	result       string
	// breakPoll, when non-zero, hijacks and severs the connection on
	// that result poll (1-based) instead of answering — a node dying
	// mid-poll rather than refusing cleanly.
	breakPoll int64
}

func (d *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		d.hits.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-1", "state": "running"})
	})
	mux.HandleFunc("GET /v1/jobs/job-1/result", func(w http.ResponseWriter, r *http.Request) {
		d.hits.Add(1)
		n := d.resultPolls.Add(1)
		if d.breakPoll != 0 && n >= d.breakPoll {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // the poll sees a reset, not an HTTP answer
			return
		}
		if n <= d.pendingPolls {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]string{"id": "job-1", "state": "running"})
			return
		}
		fmt.Fprint(w, d.result)
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		d.hits.Add(1)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-1", "state": "done"})
	})
	return mux
}

// TestSubmitAllEndpointsDown: when every -addr endpoint refuses the
// connection, submit must fail with the transport error naming the
// submission, not hang or misreport an empty result.
func TestSubmitAllEndpointsDown(t *testing.T) {
	err := cmdSubmit([]string{
		"-addr", deadAddr(t) + "," + deadAddr(t),
		"-timeout", "5s",
		"-study", "Synthetic",
	})
	if err == nil {
		t.Fatal("submit against two dead endpoints succeeded")
	}
	if !strings.Contains(err.Error(), "submitting to") {
		t.Errorf("error %q does not name the submission step", err)
	}
}

// TestSubmitFailsOverAndPinsPolls: the first endpoint is dead, the
// second is a live daemon. The submission must fail over to the live
// node, and every result poll must stay pinned there — the job ID is
// node-local, so polls never rotate endpoints.
func TestSubmitFailsOverAndPinsPolls(t *testing.T) {
	live := &fakeDaemon{pendingPolls: 2, result: `{"regions":[]}`}
	srv := httptest.NewServer(live.handler())
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "result.json")
	err := cmdSubmit([]string{
		"-addr", deadAddr(t) + "," + srv.URL,
		"-timeout", "10s",
		"-study", "Synthetic",
		"-o", out,
	})
	if err != nil {
		t.Fatalf("submit with failover: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != live.result {
		t.Errorf("result file = %q, want %q", got, live.result)
	}
	// 1 submit + 3 result polls (two pending, one final) + 1 view fetch.
	if polls := live.resultPolls.Load(); polls != 3 {
		t.Errorf("result polls = %d, want 3 (two pending, one final)", polls)
	}
}

// TestSubmitMidPollDeathStaysPinned: the accepting node dies between
// polls. Because the job ID only exists there, the poll must surface
// the transport error instead of failing over to the second endpoint,
// where the same ID would 404 and look like a finished-and-gone job.
func TestSubmitMidPollDeathStaysPinned(t *testing.T) {
	dying := &fakeDaemon{pendingPolls: 1, breakPoll: 2, result: `{"regions":[]}`}
	srvA := httptest.NewServer(dying.handler())
	defer srvA.Close()

	bystander := &fakeDaemon{result: `{"regions":[]}`}
	srvB := httptest.NewServer(bystander.handler())
	defer srvB.Close()

	err := cmdSubmit([]string{
		"-addr", srvA.URL + "," + srvB.URL,
		"-timeout", "10s",
		"-study", "Synthetic",
	})
	if err == nil {
		t.Fatal("submit survived its node dying mid-poll")
	}
	if hits := bystander.hits.Load(); hits != 0 {
		t.Errorf("second endpoint got %d requests; polls must stay pinned to the accepting node", hits)
	}
}
