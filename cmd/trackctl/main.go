// Command trackctl is the analysis front end: it clusters and tracks
// perftrack trace files (as produced by tracksim or any external
// converter) and reports the outcome — the role of the paper's tracking
// tool over Paraver traces.
//
// Usage:
//
//	trackctl cluster [-eps E] [-minpts N] [-svg FILE] TRACE
//	trackctl track   [-eps E] [-minpts N] [-svg DIR] [-metrics M1,M2] [-windows N] TRACE...
//	trackctl report  [-windows N] TRACE...
//	trackctl profile TRACE...
//	trackctl animate [-o FILE] [-seconds S] TRACE...
//	trackctl export  [-o FILE] TRACE...
//	trackctl submit  [-addr URL] [-timeout D] [-study NAME] [-series S] [-run L] [-o FILE] [TRACE...]
//	trackctl stream  [-addr URL] [-timeout D] [-rate R] [-window SPEC] [-chunk N] [-series S] [-run L] TRACE...
//	trackctl history [-addr URL] [-timeout D] [-series S]
//	trackctl diff    [-addr URL] [-timeout D] [-metric M] KEYA KEYB
//	trackctl regressions [-addr URL] [-timeout D] -series S [-metric M] [-window N] [-mads X] [-minrel X]
//	trackctl eval    [-seeds S1,S2] [-severity F] [-gate] [-timing] [-o FILE] [-store DIR] [-series S] [-run L]
//	trackctl convert [-to colbin|text] [-o FILE] TRACE...
//	trackctl info    TRACE...
//
// cluster renders the frame of a single experiment; track correlates a
// sequence of experiments (or the time windows of a single one), prints
// the tracked regions, coverage and trend tables, and optionally writes
// the renamed scatter frames as SVG; report prints the full analysis
// including evaluator matrices and ground-truth validation; profile runs
// the classic flat-profile baseline; animate emits the tracked sequence
// as a self-playing SVG; export serialises the result as JSON.
//
// Every subcommand accepts -lenient, which decodes trace files in lenient
// mode: malformed burst lines are quarantined (with per-file counts
// reported to stderr) instead of aborting the analysis, and the skipped
// lines are accounted for in the result's diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"perftrack/internal/apps"
	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/plot"
	"perftrack/internal/report"
	"perftrack/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "track":
		err = cmdTrack(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "animate":
		err = cmdAnimate(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "stream":
		err = cmdStream(os.Args[2:])
	case "history":
		err = cmdHistory(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "regressions":
		err = cmdRegressions(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  trackctl cluster [-eps E] [-minpts N] [-svg FILE] TRACE
  trackctl track   [-eps E] [-minpts N] [-svg DIR] [-metrics M1,M2] TRACE...
  trackctl profile TRACE...
  trackctl report  [-windows N] TRACE...
  trackctl animate [-o FILE] [-seconds S] TRACE...
  trackctl export  [-o FILE] TRACE...
  trackctl submit  [-addr URL] [-timeout D] [-study NAME] [-series S] [-run L] [-o FILE] [TRACE...]
  trackctl stream  [-addr URL] [-timeout D] [-rate R] [-window SPEC] [-chunk N] [-series S] [-run L] TRACE...
  trackctl history [-addr URL] [-timeout D] [-series S]
  trackctl diff    [-addr URL] [-timeout D] [-metric M] KEYA KEYB
  trackctl regressions [-addr URL] [-timeout D] -series S [-metric M] [-window N] [-mads X] [-minrel X]
  trackctl eval    [-seeds S1,S2] [-severity F] [-gate] [-timing] [-o FILE] [-store DIR] [-series S] [-run L]
  trackctl convert [-to colbin|text] [-o FILE] TRACE...
  trackctl info    TRACE...

submit sends the analysis to a running trackd daemon instead of
executing it locally, and honours the daemon's queue backpressure;
with -series the stored result joins a named run history. stream
replays trace files into a live daemon stream session — bursts are
appended in chunks (paced to -rate bursts/second), windows seal as
-window fills (a burst count or a duration), and every sealed window
prints its rolling delta: clustering, coverage, and trend movement.
history,
diff and regressions read the daemon's persistent store: the result
listing, an object-level diff of two stored runs, and the trajectory
engine's changepoint verdicts over a series.

eval runs the tracking-quality evaluation suite against the planted
ground-truth scenario corpus and prints per-family MOT-style quality
tables; -gate enforces the scorecard floors (the CI quality gate), and
-store files the scorecard into a perfdb directory so regressions can
judge quality history like any other series.

-addr accepts a comma-separated list of base URLs (the nodes of a
sharded trackd cluster): a refused connection fails over to the next
endpoint, and once one answers the operation sticks to it.

every daemon subcommand accepts -timeout D: one deadline for the whole
operation (submit retries, result polls, every request), enforced
through a context rather than a per-request client timeout. Ctrl-C
cancels cleanly at any point.

convert translates between the text format and the binary columnar
(colbin) format; every subcommand sniffs the input format, so .colbin
files work anywhere a text trace does, including submit (which sends
them as binary bodies the daemon ingests without a text parse).

every subcommand accepts -lenient: tolerate malformed trace lines by
quarantining them (diagnostics go to stderr) instead of failing.`)
}

// analysisFlags registers the flags shared by cluster and track.
func analysisFlags(fs *flag.FlagSet) (eps *float64, minPts *int, metricNames *string) {
	eps = fs.Float64("eps", 0.07, "DBSCAN radius in normalised space (0 = k-dist heuristic)")
	minPts = fs.Int("minpts", 5, "DBSCAN density threshold (0 = auto)")
	metricNames = fs.String("metrics", "IPC,Instructions", "comma-separated metric names spanning the space")
	return
}

func buildConfig(eps float64, minPts int, metricNames string) (core.Config, error) {
	cfg := core.Config{
		Cluster: cluster.Config{Eps: eps, MinPts: minPts, MinClusterWeight: 0.002},
	}
	for _, name := range strings.Split(metricNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := metrics.ByName(name)
		if !ok {
			return cfg, fmt.Errorf("unknown metric %q", name)
		}
		cfg.Metrics = append(cfg.Metrics, m)
	}
	return cfg, nil
}

// lenientMode is set by the -lenient flag (see lenientFlag); linesSkipped
// accumulates the malformed lines the lenient decoder quarantined so the
// result diagnostics can account for them.
var (
	lenientMode  bool
	linesSkipped int
)

// lenientFlag registers -lenient on a subcommand's flag set. Every
// subcommand that reads trace files supports it.
func lenientFlag(fs *flag.FlagSet) {
	fs.BoolVar(&lenientMode, "lenient", false,
		"tolerate malformed trace lines: quarantine them and report counts to stderr")
}

func loadTraces(paths []string) ([]*trace.Trace, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no trace files given")
	}
	out := make([]*trace.Trace, 0, len(paths))
	for _, p := range paths {
		// ReadFileAnyWith sniffs the colbin magic, so every subcommand
		// accepts text and binary columnar traces interchangeably.
		t, diag, err := trace.ReadFileAnyWith(p, trace.DecodeOptions{Strict: !lenientMode})
		if err != nil {
			return nil, err
		}
		if diag.Summary() != "" {
			fmt.Fprintf(os.Stderr, "trackctl: %s: %s\n", p, diag.Summary())
		}
		linesSkipped += diag.Skipped()
		out = append(out, t)
	}
	return out, nil
}

// noteDiagnostics folds the lenient-decode accounting into the result and
// reports any degraded-mode activity to stderr, keeping stdout clean for
// the analysis itself.
func noteDiagnostics(res *core.Result) {
	res.Diagnostics.AddDecode(linesSkipped)
	if !res.Diagnostics.Clean() {
		fmt.Fprintln(os.Stderr, "trackctl: diagnostics:", res.Diagnostics.Summary())
	}
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	lenientFlag(fs)
	fs.Parse(args)
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	for _, t := range traces {
		fmt.Println(t.Summary())
		fmt.Printf("  machine=%s compiler=%s tasksPerNode=%d params=%v\n",
			t.Meta.Machine, t.Meta.Compiler, t.Meta.TasksPerNode, t.Meta.Params)
		fmt.Printf("  %d distinct call-stack refs\n", len(t.Stacks()))
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	eps, minPts, metricNames := analysisFlags(fs)
	svgPath := fs.String("svg", "", "write the frame scatter as SVG to this file")
	lenientFlag(fs)
	fs.Parse(args)
	cfg, err := buildConfig(*eps, *minPts, *metricNames)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	if len(traces) != 1 {
		return fmt.Errorf("cluster analyses exactly one trace, got %d", len(traces))
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		return err
	}
	f := frames[0]
	fmt.Printf("%s: %d bursts, %d clusters (eps=%g, minPts=%d)\n",
		f.Label, len(f.Labels), f.NumClusters, cfg.Cluster.Eps, cfg.Cluster.MinPts)
	for _, ci := range f.Clusters[1:] {
		fmt.Printf("  cluster %-3d size=%-6d time=%8.3fs  centroid=%v\n",
			ci.ID, ci.Size, ci.TotalDurationNS/1e9, fmtCentroid(ci.RawCentroid))
	}
	sc := frameScatter(f, cfg, f.Labels, "clusters")
	fmt.Println(sc.ASCII(0, 0))
	if *svgPath != "" {
		return os.WriteFile(*svgPath, []byte(sc.SVG()), 0o644)
	}
	return nil
}

func cmdTrack(args []string) error {
	fs := flag.NewFlagSet("track", flag.ExitOnError)
	eps, minPts, metricNames := analysisFlags(fs)
	svgDir := fs.String("svg", "", "write renamed scatter frames as SVG into this directory")
	minVar := fs.Float64("minvar", 0.03, "minimum trend variation to report")
	windows := fs.Int("windows", 0, "split a single trace into N time windows and track their evolution")
	lenientFlag(fs)
	fs.Parse(args)
	cfg, err := buildConfig(*eps, *minPts, *metricNames)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	if *windows > 1 {
		if len(traces) != 1 {
			return fmt.Errorf("-windows analyses exactly one trace, got %d", len(traces))
		}
		traces = traces[0].SplitWindows(*windows)
	}
	if len(traces) < 2 {
		return fmt.Errorf("track needs at least two traces (or one trace with -windows), got %d", len(traces))
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		return err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return err
	}
	noteDiagnostics(res)

	fmt.Printf("%d frames, %d tracked regions, optimal k=%d, coverage %.0f%%\n",
		len(res.Frames), res.SpanningCount, res.OptimalK, 100*res.Coverage)
	for _, tr := range res.Regions {
		span := "partial"
		if tr.Spanning {
			span = "spanning"
		}
		fmt.Printf("  region %-3d %-8s time=%8.3fs members=%v\n",
			tr.ID, span, tr.TotalDurationNS/1e9, tr.Members)
	}
	sr := &report.StudyResult{
		Study:  apps.Study{Name: "trackctl", Track: cfg, ParamName: "experiment"},
		Traces: traces,
		Result: res,
	}
	for _, m := range cfg.Metrics {
		fmt.Println(report.TrendTable(sr, m))
	}
	// Call out the regions whose behaviour actually moves (the paper
	// plots "only the regions with higher IPC variations").
	for _, m := range cfg.Metrics {
		notable := res.TopTrends(m, *minVar)
		if len(notable) == 0 {
			continue
		}
		fmt.Printf("notable %s trends (variation >= %.0f%%):\n", m.Name, 100**minVar)
		for _, rt := range notable {
			fmt.Printf("  region %-3d max variation %5.1f%%  first->last %+.1f%%\n",
				rt.RegionID, 100*rt.MaxVariation(), 100*rt.RelDeltaMean())
		}
		fmt.Println()
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for fi, f := range res.Frames {
			sc := frameScatter(f, cfg, res.RegionLabels(fi), "tracked regions")
			path := filepath.Join(*svgDir, fmt.Sprintf("frame_%02d.svg", fi))
			if err := os.WriteFile(path, []byte(sc.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	return nil
}

func frameScatter(f *core.Frame, cfg core.Config, labels []int, kind string) *plot.Scatter {
	ms := cfg.Metrics
	if len(ms) == 0 {
		ms = metrics.DefaultSpace()
	}
	sc := &plot.Scatter{
		Title:  fmt.Sprintf("%s (%s)", f.Label, kind),
		XLabel: ms[0].Name,
		YLabel: ms[1].Name,
		XLog:   ms[0].LogScale,
		YLog:   ms[1].LogScale,
	}
	for i, p := range f.Points {
		sc.Points = append(sc.Points, plot.ScatterPoint{X: p[0], Y: p[1], Class: labels[i]})
	}
	return sc
}

func fmtCentroid(c []float64) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = report.SI(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
