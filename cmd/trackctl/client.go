package main

// Shared plumbing for the daemon-client subcommands (submit, history,
// diff, regressions): every one of them takes the same -addr and
// -timeout flags, and every request they issue runs under one context
// that carries both the overall deadline and Ctrl-C cancellation. The
// http.Client itself has NO per-request timeout — a single deadline for
// the whole operation composes correctly across retries and polls,
// where a per-request timeout silently resets on every attempt.
//
// -addr accepts a comma-separated list of base URLs. Against a sharded
// trackd cluster, any node answers any read and forwards any write, so
// the client fails over to the next endpoint when one refuses the
// connection. Failover is sticky: once an endpoint answers, the rest of
// the operation stays on it — job IDs are node-local, so the poll after
// a submit must land where the submit did.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// daemonFlags registers the flags every daemon-client subcommand shares.
// The returned timeout is the overall operation deadline (0 disables it).
func daemonFlags(fs *flag.FlagSet, defaultTimeout time.Duration) (addr *string, timeout *time.Duration) {
	addr = fs.String("addr", "http://127.0.0.1:7077", "trackd base URL, or a comma-separated list to fail over across")
	timeout = fs.Duration("timeout", defaultTimeout, "overall operation deadline (0 = none)")
	return
}

// endpoints is the ordered list of trackd base URLs a subcommand may
// talk to, with the sticky cursor the failover discipline maintains.
type endpoints struct {
	bases []string
	cur   int
}

// parseEndpoints splits the -addr value into its base URLs.
func parseEndpoints(addr string) (*endpoints, error) {
	var bases []string
	for _, part := range strings.Split(addr, ",") {
		if part = strings.TrimSpace(part); part != "" {
			bases = append(bases, strings.TrimRight(part, "/"))
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("-addr needs at least one base URL")
	}
	return &endpoints{bases: bases}, nil
}

// base is the current endpoint, for error messages.
func (e *endpoints) base() string { return e.bases[e.cur] }

// do issues the request build constructs against the current endpoint,
// advancing to the next base on a transport-level failure (connection
// refused, reset, no route) until one answers or all are exhausted. An
// HTTP error status is an answer, not a failover trigger; a canceled or
// expired context aborts immediately. The cursor stays wherever the
// last answer came from, so subsequent calls on the same endpoints
// value stick to the node that is actually up.
func (e *endpoints) do(ctx context.Context, client *http.Client, build func(base string) (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for tries := 0; tries < len(e.bases); tries++ {
		req, err := build(e.base())
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		if len(e.bases) > 1 && tries < len(e.bases)-1 {
			fmt.Fprintf(os.Stderr, "trackctl: %s unreachable, trying next endpoint\n", e.base())
		}
		e.cur = (e.cur + 1) % len(e.bases)
	}
	return nil, lastErr
}

// get fetches path (relative to the current base) with failover.
func (e *endpoints) get(ctx context.Context, client *http.Client, path string) (*http.Response, error) {
	return e.do(ctx, client, func(base string) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	})
}

// getJSON fetches path and decodes the JSON body into v, surfacing the
// daemon's error message on non-200s.
func (e *endpoints) getJSON(ctx context.Context, client *http.Client, path string, v any) error {
	resp, err := e.get(ctx, client, path)
	if err != nil {
		if ctx.Err() != nil {
			return ctxErr(ctx, "querying "+e.base()+path)
		}
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}

// getCtx is client.Get bound to the operation context, pinned to one
// explicit base (no failover) — used where the target node matters,
// like polling a node-local job ID.
func getCtx(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// daemonContext builds the context all of a subcommand's requests run
// under: canceled by Ctrl-C/SIGTERM, expired by -timeout.
func daemonContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// ctxErr translates a context failure into the message the user should
// see: an interrupt and an expired deadline are different situations.
func ctxErr(ctx context.Context, doing string) error {
	if ctx.Err() == context.DeadlineExceeded {
		return fmt.Errorf("deadline exceeded while %s (raise -timeout)", doing)
	}
	return fmt.Errorf("interrupted while %s", doing)
}
