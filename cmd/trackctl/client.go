package main

// Shared plumbing for the daemon-client subcommands (submit, history,
// diff, regressions): every one of them takes the same -addr and
// -timeout flags, and every request they issue runs under one context
// that carries both the overall deadline and Ctrl-C cancellation. The
// http.Client itself has NO per-request timeout — a single deadline for
// the whole operation composes correctly across retries and polls,
// where a per-request timeout silently resets on every attempt.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// daemonFlags registers the flags every daemon-client subcommand shares.
// The returned timeout is the overall operation deadline (0 disables it).
func daemonFlags(fs *flag.FlagSet, defaultTimeout time.Duration) (addr *string, timeout *time.Duration) {
	addr = fs.String("addr", "http://127.0.0.1:7077", "trackd base URL")
	timeout = fs.Duration("timeout", defaultTimeout, "overall operation deadline (0 = none)")
	return
}

// daemonContext builds the context all of a subcommand's requests run
// under: canceled by Ctrl-C/SIGTERM, expired by -timeout.
func daemonContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// ctxErr translates a context failure into the message the user should
// see: an interrupt and an expired deadline are different situations.
func ctxErr(ctx context.Context, doing string) error {
	if ctx.Err() == context.DeadlineExceeded {
		return fmt.Errorf("deadline exceeded while %s (raise -timeout)", doing)
	}
	return fmt.Errorf("interrupted while %s", doing)
}

// getCtx is client.Get bound to the operation context.
func getCtx(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// getJSON fetches u under ctx and decodes the JSON body into v,
// surfacing the daemon's error message on non-200s.
func getJSON(ctx context.Context, client *http.Client, u string, v any) error {
	resp, err := getCtx(ctx, client, u)
	if err != nil {
		if ctx.Err() != nil {
			return ctxErr(ctx, "querying "+u)
		}
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}
