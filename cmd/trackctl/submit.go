package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"perftrack/internal/service"
	"perftrack/internal/trace"
)

// cmdSubmit sends an analysis to a running trackd daemon instead of
// executing it in-process: the trace files (or a catalog study name) are
// posted to /v1/jobs, the job is polled until it reaches a terminal
// state, and the result JSON is written to stdout or -o. Cache and queue
// feedback (X-Cache, 429 backoff) goes to stderr so stdout stays a clean
// result stream.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr, timeout := daemonFlags(fs, 5*time.Minute)
	study := fs.String("study", "", "submit a catalog study by name instead of trace files")
	windows := fs.Int("windows", 0, "split a single trace into N time windows")
	metricNames := fs.String("metrics", "", "comma-separated metric names (default: server-side default space)")
	out := fs.String("o", "", "write the result JSON to this file (default stdout)")
	eps := fs.Float64("eps", 0, "DBSCAN radius override (0 = server default)")
	minPts := fs.Int("minpts", 0, "DBSCAN density override (0 = server default)")
	series := fs.String("series", "", "file the stored result under this run series (perfdb history)")
	runLabel := fs.String("run", "", "label of this run inside -series")
	lenientFlag(fs)
	fs.Parse(args)

	// A polled submission should die promptly on Ctrl-C instead of
	// sleeping through it, and -timeout bounds the whole operation —
	// submit retries and result polls together: every request and every
	// backoff below runs under this one context.
	ctx, cancel := daemonContext(*timeout)
	defer cancel()

	req := service.JobRequest{
		Study:    *study,
		Windows:  *windows,
		Lenient:  lenientMode,
		Series:   *series,
		RunLabel: *runLabel,
	}
	if *metricNames != "" {
		for _, name := range strings.Split(*metricNames, ",") {
			if name = strings.TrimSpace(name); name != "" {
				req.Metrics = append(req.Metrics, name)
			}
		}
	}
	if *eps != 0 || *minPts != 0 {
		req.Config = &service.ConfigSpec{Eps: *eps, MinPts: *minPts}
	}
	if *study == "" {
		if fs.NArg() == 0 {
			return fmt.Errorf("submit needs -study NAME or trace files")
		}
		for _, p := range fs.Args() {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			// Binary columnar files ride in tracesBin (base64 in the
			// JSON body); forcing them through a string would mangle
			// the bytes.
			if trace.IsColbin(raw) {
				req.TracesBin = append(req.TracesBin, raw)
			} else {
				req.Traces = append(req.Traces, string(raw))
			}
		}
		if len(req.Traces) > 0 && len(req.TracesBin) > 0 {
			return fmt.Errorf("submit cannot mix text and binary trace files; align them with trackctl convert")
		}
	} else if fs.NArg() != 0 {
		return fmt.Errorf("-study and trace files are mutually exclusive")
	}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := &http.Client{}
	addrs, err := parseEndpoints(*addr)
	if err != nil {
		return err
	}

	// Submit, honouring 429 backpressure with the server's Retry-After.
	// A refused connection fails over to the next -addr endpoint; once a
	// node answers, the whole operation (retries AND result polls) sticks
	// to it, because the job ID in its reply is local to that node.
	var view service.JobView
	for {
		resp, err := addrs.do(ctx, client, func(base string) (*http.Request, error) {
			httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			httpReq.Header.Set("Content-Type", "application/json")
			return httpReq, nil
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctxErr(ctx, "submitting to "+addrs.base())
			}
			return fmt.Errorf("submitting to %s: %w", addrs.base(), err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			// Jitter the backoff so a herd of clients rejected together
			// does not stampede the daemon again in lockstep.
			wait += time.Duration(rand.Int63n(int64(wait/4) + 1))
			if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
				return fmt.Errorf("queue full at %s and -timeout would expire before the retry", addrs.base())
			}
			fmt.Fprintf(os.Stderr, "trackctl: queue full, retrying in %s\n", wait.Round(time.Millisecond))
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(respBody)))
		}
		if err := json.Unmarshal(respBody, &view); err != nil {
			return fmt.Errorf("decoding job view: %w", err)
		}
		if cache := resp.Header.Get("X-Cache"); cache != "" {
			fmt.Fprintf(os.Stderr, "trackctl: job %s (cache %s)\n", view.ID, cache)
		}
		break
	}

	// Poll the result endpoint until the job is terminal. Polls are
	// PINNED to the endpoint that accepted the job (no failover): the ID
	// only exists on that node, so asking a different one would turn a
	// transient blip into a definitive-looking 404.
	base := addrs.base()
	for {
		resp, err := getCtx(ctx, client, base+"/v1/jobs/"+view.ID+"/result")
		if err != nil {
			if ctx.Err() != nil {
				return ctxErr(ctx, "polling job "+view.ID)
			}
			return err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			// Fetch the final view so degraded-mode diagnostics reach
			// stderr even when the result was ready on the first poll.
			if r2, err := getCtx(ctx, client, base+"/v1/jobs/"+view.ID); err == nil {
				var final service.JobView
				if b2, _ := io.ReadAll(r2.Body); json.Unmarshal(b2, &final) == nil {
					view = final
				}
				r2.Body.Close()
			}
			if view.Diagnostics != "" {
				fmt.Fprintln(os.Stderr, "trackctl: diagnostics:", view.Diagnostics)
			}
			if *out != "" {
				return os.WriteFile(*out, respBody, 0o644)
			}
			_, err := os.Stdout.Write(respBody)
			return err
		case http.StatusAccepted:
			var pending service.JobView
			if err := json.Unmarshal(respBody, &pending); err == nil {
				view = pending
			}
			if err := sleepCtx(ctx, 100*time.Millisecond); err != nil {
				return ctxErr(ctx, fmt.Sprintf("polling job %s (still %s)", view.ID, view.State))
			}
		default:
			return fmt.Errorf("job %s: %s: %s", view.ID, resp.Status, strings.TrimSpace(string(respBody)))
		}
	}
}

// sleepCtx waits d, returning early when the context is canceled (the
// user hit Ctrl-C or the -timeout deadline expired).
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
