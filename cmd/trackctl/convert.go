package main

// trackctl convert translates trace files between the perftrack text
// format and the binary columnar (colbin) format. The input format is
// sniffed, so converting in either direction is the same command; the
// conversion is lossless up to the text writer's canonical (task, time)
// burst ordering.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perftrack/internal/trace"
)

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "colbin", "target format: colbin or text")
	out := fs.String("o", "", "output file (single input only; default derives from the input name)")
	lenientFlag(fs)
	fs.Parse(args)
	if *to != "colbin" && *to != "text" {
		return fmt.Errorf("convert: -to must be colbin or text, got %q", *to)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("convert: no trace files given")
	}
	if *out != "" && fs.NArg() != 1 {
		return fmt.Errorf("convert: -o needs exactly one input, got %d", fs.NArg())
	}
	for _, p := range fs.Args() {
		t, diag, err := trace.ReadFileAnyWith(p, trace.DecodeOptions{Strict: !lenientMode})
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if diag.Summary() != "" {
			fmt.Fprintf(os.Stderr, "trackctl: %s: %s\n", p, diag.Summary())
		}
		dst := *out
		if dst == "" {
			dst = convertName(p, *to)
		}
		if *to == "colbin" {
			err = trace.WriteColbinFile(dst, t)
		} else {
			err = trace.WriteFile(dst, t)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", dst, err)
		}
		info, _ := os.Stat(dst)
		var size int64
		if info != nil {
			size = info.Size()
		}
		fmt.Printf("wrote %s (%d bursts, %d bytes)\n", dst, len(t.Bursts), size)
	}
	return nil
}

// convertName derives the output path: swap the conventional extension
// when present, append the target's otherwise.
func convertName(in, to string) string {
	switch to {
	case "colbin":
		if s, ok := strings.CutSuffix(in, ".trace"); ok {
			return s + ".colbin"
		}
		return in + ".colbin"
	default:
		if s, ok := strings.CutSuffix(in, ".colbin"); ok {
			return s + ".trace"
		}
		return in + ".trace"
	}
}
