package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/apps"
	"perftrack/internal/core"
	"perftrack/internal/plot"
	"perftrack/internal/profile"
	"perftrack/internal/report"
)

// cmdProfile runs the classic profile-based baseline over the traces: per
// region averages and their cross-experiment deltas, plus the
// multi-modality warnings showing what the averages hide (the comparison
// the paper draws against SCALASCA/PerfExplorer-style analysis).
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	lenientFlag(fs)
	fs.Parse(args)
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	profiles := make([]*profile.Profile, len(traces))
	for i, t := range traces {
		profiles[i] = profile.New(t)
		fmt.Println(profiles[i])
	}
	for i := 1; i < len(profiles); i++ {
		fmt.Printf("delta %s -> %s:\n", profiles[i-1].Label, profiles[i].Label)
		for _, d := range profile.Compare(profiles[i-1], profiles[i]) {
			switch {
			case d.A == nil:
				fmt.Printf("  %-34s appears only in %s\n", d.Stack, profiles[i].Label)
			case d.B == nil:
				fmt.Printf("  %-34s appears only in %s\n", d.Stack, profiles[i-1].Label)
			default:
				fmt.Printf("  %-34s time x%.3f  IPC x%.3f\n", d.Stack, d.DurationRatio, d.IPCRatio)
			}
		}
	}
	return nil
}

// cmdAnimate tracks the traces and writes the renamed frame sequence as a
// grid and as a self-playing SVG animation.
func cmdAnimate(args []string) error {
	fs := flag.NewFlagSet("animate", flag.ExitOnError)
	eps, minPts, metricNames := analysisFlags(fs)
	out := fs.String("o", "animation.svg", "output SVG (a _grid.svg variant is written too)")
	secs := fs.Float64("seconds", 1, "seconds per frame")
	lenientFlag(fs)
	fs.Parse(args)
	cfg, err := buildConfig(*eps, *minPts, *metricNames)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		return err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return err
	}
	noteDiagnostics(res)
	strip := &plot.Filmstrip{
		Title:        "tracked performance space",
		FrameSeconds: *secs,
	}
	for fi, f := range res.Frames {
		strip.Frames = append(strip.Frames, frameScatter(f, cfg, res.RegionLabels(fi), "tracked regions"))
	}
	if err := os.WriteFile(*out, []byte(strip.AnimatedSVG()), 0o644); err != nil {
		return err
	}
	grid := gridName(*out)
	if err := os.WriteFile(grid, []byte(strip.GridSVG()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (animation) and %s (grid), %d frames, coverage %.0f%%\n",
		*out, grid, len(res.Frames), 100*res.Coverage)
	return nil
}

func gridName(path string) string {
	const suffix = ".svg"
	if len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix {
		return path[:len(path)-len(suffix)] + "_grid" + suffix
	}
	return path + "_grid.svg"
}

// cmdReport tracks the traces and prints the complete textual analysis:
// frames, relations, evaluator matrices, trends and validation.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	eps, minPts, metricNames := analysisFlags(fs)
	windows := fs.Int("windows", 0, "split a single trace into N time windows first")
	lenientFlag(fs)
	fs.Parse(args)
	cfg, err := buildConfig(*eps, *minPts, *metricNames)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	if *windows > 1 {
		if len(traces) != 1 {
			return fmt.Errorf("-windows analyses exactly one trace, got %d", len(traces))
		}
		traces = traces[0].SplitWindows(*windows)
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		return err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return err
	}
	noteDiagnostics(res)
	sr := &report.StudyResult{
		Study:  apps.Study{Name: traces[0].Meta.App, Track: cfg, ParamName: "experiment"},
		Traces: traces,
		Result: res,
	}
	return report.WriteStudyReport(os.Stdout, sr)
}

// cmdExport tracks the traces and writes the result as JSON for external
// tooling.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	eps, minPts, metricNames := analysisFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	lenientFlag(fs)
	fs.Parse(args)
	cfg, err := buildConfig(*eps, *minPts, *metricNames)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		return err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return err
	}
	noteDiagnostics(res)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return res.WriteJSON(w, cfg.Metrics)
}
