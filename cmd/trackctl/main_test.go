package main

import (
	"path/filepath"
	"testing"

	"perftrack/internal/apps"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(0.05, 4, "IPC,Instructions")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Metrics) != 2 || cfg.Cluster.Eps != 0.05 || cfg.Cluster.MinPts != 4 {
		t.Errorf("config = %+v", cfg)
	}
	if _, err := buildConfig(0.05, 4, "IPC,Bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
	// Stray commas and spaces are tolerated.
	cfg, err = buildConfig(0.05, 4, " IPC , Instructions ,")
	if err != nil || len(cfg.Metrics) != 2 {
		t.Errorf("lenient parse failed: %v %v", cfg.Metrics, err)
	}
}

func TestGridName(t *testing.T) {
	if got := gridName("anim.svg"); got != "anim_grid.svg" {
		t.Errorf("gridName = %q", got)
	}
	if got := gridName("anim"); got != "anim_grid.svg" {
		t.Errorf("gridName no-ext = %q", got)
	}
}

func TestLoadTraces(t *testing.T) {
	if _, err := loadTraces(nil); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := loadTraces([]string{"/nonexistent/x"}); err == nil {
		t.Error("missing file accepted")
	}
	// Write one real trace and load it back.
	st, err := apps.ByName("NAS FT")
	if err != nil {
		t.Fatal(err)
	}
	st.Runs[0].Scenario.Iterations = 2
	tr, err := mpisim.Simulate(st.Runs[0].App, st.Runs[0].Scenario)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.prv.txt")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := loadTraces([]string{path})
	if err != nil || len(got) != 1 {
		t.Fatalf("loadTraces: %v, %d", err, len(got))
	}
}
