package main

// trackctl stream: live ingestion against a running trackd. The
// subcommand replays trace files into a daemon-resident stream session
// — create the stream, append burst chunks (optionally paced to a
// bursts/second rate, so a recorded trace becomes a stand-in for a live
// run), and print the rolling delta every time a window seals: the
// window's population and clustering, the cumulative coverage, and the
// spanning-region trend movements. On exit the stream is finished,
// which seals the partial open window and releases the session.
//
// The -addr failover discipline is the same sticky one submit uses;
// streams are node-local, so once an endpoint accepts the create, every
// append stays there. Backpressure (429 + Retry-After) pauses the
// sender instead of failing it.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"perftrack/internal/service"
	"perftrack/internal/stream"
	"perftrack/internal/trace"
)

// parseWindowSpec reads the -window value: a bare integer is a burst
// count, anything else must parse as a duration (the fixed window width).
func parseWindowSpec(s string) (stream.WindowSpec, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return stream.WindowSpec{CountN: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return stream.WindowSpec{}, fmt.Errorf("-window %q: not a burst count or a duration", s)
	}
	return stream.WindowSpec{WindowNS: d.Nanoseconds()}, nil
}

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr, timeout := daemonFlags(fs, 0)
	rate := fs.Float64("rate", 0, "append pacing in bursts/second (0 = as fast as the daemon accepts)")
	window := fs.String("window", "64", "window spec: a burst count, or a duration like 250ms")
	chunkSize := fs.Int("chunk", 64, "bursts per append request")
	series := fs.String("series", "", "file each sealed window's result under this perfdb series")
	runLabel := fs.String("run", "", "stream label (default: first trace's label)")
	idFlag := fs.String("id", "", "stream id (default: daemon-assigned)")
	metricNames := fs.String("metrics", "", "comma-separated metric names (empty = daemon default space)")
	minVar := fs.Float64("minvar", 0.03, "minimum |trend movement| to print")
	lenientFlag(fs)
	fs.Parse(args)

	spec, err := parseWindowSpec(*window)
	if err != nil {
		return err
	}
	if *chunkSize < 1 {
		return fmt.Errorf("-chunk must be at least 1")
	}
	traces, err := loadTraces(fs.Args())
	if err != nil {
		return err
	}
	eps, err := parseEndpoints(*addr)
	if err != nil {
		return err
	}
	ctx, cancel := daemonContext(*timeout)
	defer cancel()
	client := &http.Client{}

	label := *runLabel
	if label == "" {
		label = traces[0].Meta.Label
	}
	req := service.StreamRequest{
		ID:     *idFlag,
		Label:  label,
		Ranks:  traces[0].Meta.Ranks,
		Window: spec,
		Series: *series,
	}
	for _, name := range strings.Split(*metricNames, ",") {
		if name = strings.TrimSpace(name); name != "" {
			req.Metrics = append(req.Metrics, name)
		}
	}

	var view service.StreamView
	if err := streamPost(ctx, eps, client, "/v1/streams", mustJSON(req), "application/json", &view); err != nil {
		return fmt.Errorf("creating stream: %w", err)
	}
	fmt.Printf("stream %s on %s (window %s", view.ID, eps.base(), *window)
	if view.Series != "" {
		fmt.Printf(", series %s", view.Series)
	}
	fmt.Println(")")

	var pace time.Duration
	if *rate > 0 {
		pace = time.Duration(float64(time.Second) / *rate)
	}
	next := time.Now()
	sent := 0
	for _, tr := range traces {
		for off := 0; off < len(tr.Bursts); off += *chunkSize {
			end := min(off+*chunkSize, len(tr.Bursts))
			var buf bytes.Buffer
			if err := trace.Write(&buf, &trace.Trace{Meta: tr.Meta, Bursts: tr.Bursts[off:end]}); err != nil {
				return err
			}
			if pace > 0 {
				next = next.Add(time.Duration(end-off) * pace)
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return ctxErr(ctx, "pacing appends")
					}
				}
			}
			var ar service.StreamAppendResponse
			if err := streamPost(ctx, eps, client, "/v1/streams/"+view.ID+"/bursts", buf.Bytes(), "text/plain", &ar); err != nil {
				return fmt.Errorf("appending bursts %d..%d: %w", sent, sent+end-off, err)
			}
			sent += end - off
			for _, d := range ar.Sealed {
				printDelta(d, *minVar)
			}
		}
	}

	var fin struct {
		Sealed []*stream.Delta    `json:"sealed"`
		Stream service.StreamView `json:"stream"`
	}
	if err := streamPost(ctx, eps, client, "/v1/streams/"+view.ID+"/finish", nil, "application/json", &fin); err != nil {
		return fmt.Errorf("finishing stream: %w", err)
	}
	for _, d := range fin.Sealed {
		printDelta(d, *minVar)
	}
	st := fin.Stream.Stats
	fmt.Printf("finished: %d windows sealed, %d bursts appended (%d quarantined, %d dropped)\n",
		st.WindowsSealed, st.Appended, st.Quarantined, st.DroppedEarly+st.DroppedLate)
	return nil
}

// streamPost posts body to path with sticky failover, retrying the same
// request after Retry-After on 429 backpressure, and decodes the JSON
// response into out.
func streamPost(ctx context.Context, eps *endpoints, client *http.Client, path string, body []byte, contentType string, out any) error {
	for {
		resp, err := eps.do(ctx, client, func(base string) (*http.Request, error) {
			r, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			r.Header.Set("Content-Type", contentType)
			return r, nil
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctxErr(ctx, "posting to "+eps.base()+path)
			}
			return err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			fmt.Fprintf(os.Stderr, "trackctl: backpressure from %s, pausing %s\n", eps.base(), wait)
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return ctxErr(ctx, "waiting out backpressure")
			}
		}
		if resp.StatusCode >= 300 {
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(respBody, &e) == nil && e.Error != "" {
				return fmt.Errorf("%s: %s", resp.Status, e.Error)
			}
			return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(respBody)))
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(respBody, out)
	}
}

// printDelta renders one rolling window delta: the sealed frame on the
// first line, then any spanning-region trend that moved past -minvar.
func printDelta(d *stream.Delta, minVar float64) {
	mode := "incremental"
	if !d.Incremental {
		mode = "reclustered"
	}
	line := fmt.Sprintf("w%-3d %-16s bursts=%-5d clusters=%-3d %s", d.Window, d.Label, d.Bursts, d.NumClusters, mode)
	switch {
	case d.EvalError != "":
		fmt.Printf("%s  (not yet trackable: %s)\n", line, d.EvalError)
		return
	case d.Degraded:
		fmt.Printf("%s  (degraded: %s)\n", line, d.DegradedReason)
	default:
		fmt.Printf("%s  regions=%d spanning=%d k=%d coverage=%.0f%%\n",
			line, d.Regions, d.TrackedRegions, d.OptimalK, 100*d.Coverage)
	}
	for _, t := range d.Trends {
		if t.RelDelta >= minVar || t.RelDelta <= -minVar {
			fmt.Printf("     region %-3d %-14s mean=%-12.4g %+.1f%%\n", t.Region, t.Metric, t.Mean, 100*t.RelDelta)
		}
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
