package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestParseEndpoints(t *testing.T) {
	e, err := parseEndpoints("http://a:1/, http://b:2 ,,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(e.bases) != len(want) {
		t.Fatalf("bases = %v", e.bases)
	}
	for i, b := range want {
		if e.bases[i] != b {
			t.Errorf("base %d = %q, want %q", i, e.bases[i], b)
		}
	}
	if e.base() != "http://a:1" {
		t.Errorf("initial base = %q", e.base())
	}
	if _, err := parseEndpoints(" , "); err == nil {
		t.Error("empty -addr accepted")
	}
}

// TestEndpointFailover points the first -addr entry at a port nothing
// listens on and the second at a live server: the request must land on
// the live one, and subsequent requests must stick to it instead of
// retrying the dead endpoint first.
func TestEndpointFailover(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprintf(w, `{"ok":%d}`, hits)
	}))
	defer srv.Close()

	// A port that was just released: connecting to it is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	e, err := parseEndpoints(dead + "," + srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	ctx := context.Background()

	var v struct {
		OK int `json:"ok"`
	}
	if err := e.getJSON(ctx, client, "/v1/results", &v); err != nil {
		t.Fatalf("failover get: %v", err)
	}
	if v.OK != 1 {
		t.Fatalf("response = %+v", v)
	}
	if e.base() != srv.URL {
		t.Fatalf("cursor not sticky: base = %q, want %q", e.base(), srv.URL)
	}

	// The second request goes straight to the live endpoint.
	if err := e.getJSON(ctx, client, "/v1/results", &v); err != nil {
		t.Fatal(err)
	}
	if v.OK != 2 {
		t.Fatalf("second response = %+v", v)
	}

	// All endpoints dead: the transport error surfaces instead of
	// spinning forever.
	allDead, err := parseEndpoints(dead)
	if err != nil {
		t.Fatal(err)
	}
	if err := allDead.getJSON(ctx, client, "/v1/results", &v); err == nil {
		t.Error("expected an error when every endpoint refuses")
	}
}
