package main

// Subcommands over trackd's perfdb surface: the stored result history,
// run-to-run diffs, and series regression reports. These are thin HTTP
// clients — the store and the trajectory engine live in the daemon; the
// CLI renders their answers.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"perftrack/internal/trajectory"
)

// storedMeta mirrors store.Meta for decoding listings.
type storedMeta struct {
	Key      string `json:"key"`
	Series   string `json:"series"`
	Label    string `json:"label"`
	UnixNano int64  `json:"unixNano"`
	Seq      uint64 `json:"seq"`
	Size     int    `json:"size"`
}

// cmdHistory lists the daemon's stored results, optionally one series.
func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	addr, timeout := daemonFlags(fs, 30*time.Second)
	series := fs.String("series", "", "list only this run series")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("history takes no positional arguments")
	}
	ctx, cancel := daemonContext(*timeout)
	defer cancel()
	client := &http.Client{}
	addrs, err := parseEndpoints(*addr)
	if err != nil {
		return err
	}
	u := "/v1/results"
	if *series != "" {
		u += "?series=" + url.QueryEscape(*series)
	}
	var listing struct {
		Results []storedMeta `json:"results"`
	}
	if err := addrs.getJSON(ctx, client, u, &listing); err != nil {
		return err
	}
	if len(listing.Results) == 0 {
		fmt.Println("no stored results")
		return nil
	}
	fmt.Printf("%-12s  %-16s  %-24s  %-20s  %9s\n", "KEY", "SERIES", "LABEL", "STORED", "BYTES")
	for _, m := range listing.Results {
		series := m.Series
		if series == "" {
			series = "-"
		}
		fmt.Printf("%-12s  %-16s  %-24s  %-20s  %9d\n",
			m.Key[:min(12, len(m.Key))], series, m.Label,
			time.Unix(0, m.UnixNano).UTC().Format("2006-01-02 15:04:05"), m.Size)
	}
	return nil
}

// fetchRun downloads one stored result (by abbreviable key) and reduces
// it to its tracked objects. Stored results are content-keyed and any
// cluster node can answer for the whole corpus, so the fetch fails over
// across the -addr endpoints freely.
func fetchRun(ctx context.Context, client *http.Client, addrs *endpoints, key string) (trajectory.Run, error) {
	resp, err := addrs.get(ctx, client, "/v1/results/"+url.PathEscape(key))
	if err != nil {
		if ctx.Err() != nil {
			return trajectory.Run{}, ctxErr(ctx, "fetching "+key)
		}
		return trajectory.Run{}, err
	}
	body, _ := io.ReadAll(resp.Body)
	full := resp.Header.Get("X-Store-Key")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return trajectory.Run{}, fmt.Errorf("fetching %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
	}
	if full == "" {
		full = key
	}
	return trajectory.ParseRun(body, full, key, 0)
}

// cmdDiff links the tracked objects of two stored runs and prints how
// each behaviour moved between them.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	addr, timeout := daemonFlags(fs, 30*time.Second)
	metricName := fs.String("metric", "IPC", "metric to report per linked behaviour")
	maxDist := fs.Float64("maxdist", 0, "link distance bound (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two stored-result keys (prefixes allowed)")
	}
	ctx, cancel := daemonContext(*timeout)
	defer cancel()
	client := &http.Client{}
	addrs, err := parseEndpoints(*addr)
	if err != nil {
		return err
	}

	runA, err := fetchRun(ctx, client, addrs, fs.Arg(0))
	if err != nil {
		return err
	}
	runB, err := fetchRun(ctx, client, addrs, fs.Arg(1))
	if err != nil {
		return err
	}
	trajs := trajectory.Chain([]trajectory.Run{runA, runB}, trajectory.LinkConfig{MaxDist: *maxDist})

	fmt.Printf("diff %s -> %s (%d vs %d tracked objects)\n",
		runA.Key[:min(12, len(runA.Key))], runB.Key[:min(12, len(runB.Key))],
		len(runA.Objects), len(runB.Objects))
	for _, tr := range trajs {
		switch {
		case len(tr.Points) == 2:
			a, b := tr.Points[0].State, tr.Points[1].State
			va, okA := a.Metrics[*metricName]
			vb, okB := b.Metrics[*metricName]
			if !okA || !okB {
				fmt.Printf("  region %d -> %d: linked (no %s values)\n", a.Region, b.Region, *metricName)
				continue
			}
			rel := 0.0
			if va != 0 {
				rel = (vb - va) / va
			}
			fmt.Printf("  region %d -> %d: %s %.4g -> %.4g (%+.1f%%, share %.1f%%)\n",
				a.Region, b.Region, *metricName, va, vb, 100*rel, 100*b.DurationShare)
		case tr.Points[0].RunIndex == 0:
			st := tr.Points[0].State
			fmt.Printf("  region %d: only in first run (share %.1f%%)\n", st.Region, 100*st.DurationShare)
		default:
			st := tr.Points[0].State
			fmt.Printf("  region %d: only in second run (share %.1f%%)\n", st.Region, 100*st.DurationShare)
		}
	}
	return nil
}

// cmdRegressions asks the daemon to judge a series' trajectories and
// prints the verdicts, notable first.
func cmdRegressions(args []string) error {
	fs := flag.NewFlagSet("regressions", flag.ExitOnError)
	addr, timeout := daemonFlags(fs, 30*time.Second)
	series := fs.String("series", "", "run series to judge (required)")
	metricName := fs.String("metric", "", "metric to judge (default IPC)")
	window := fs.Int("window", 0, "baseline window in runs (0 = default)")
	mads := fs.Float64("mads", 0, "deviation threshold in MADs (0 = default)")
	minRel := fs.Float64("minrel", 0, "minimum relative change (0 = default)")
	all := fs.Bool("all", false, "print steady/insufficient verdicts too")
	fs.Parse(args)
	if *series == "" {
		return fmt.Errorf("regressions needs -series NAME")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("regressions takes no positional arguments")
	}
	ctx, cancel := daemonContext(*timeout)
	defer cancel()
	client := &http.Client{}
	addrs, err := parseEndpoints(*addr)
	if err != nil {
		return err
	}

	q := url.Values{}
	if *metricName != "" {
		q.Set("metric", *metricName)
	}
	if *window > 0 {
		q.Set("window", fmt.Sprint(*window))
	}
	if *mads > 0 {
		q.Set("mads", fmt.Sprint(*mads))
	}
	if *minRel > 0 {
		q.Set("minRel", fmt.Sprint(*minRel))
	}
	u := "/v1/series/" + url.PathEscape(*series) + "/regressions"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var res struct {
		Runs     []map[string]any     `json:"runs"`
		Verdicts []trajectory.Verdict `json:"verdicts"`
		Notable  int                  `json:"notable"`
	}
	if err := addrs.getJSON(ctx, client, u, &res); err != nil {
		return err
	}
	fmt.Printf("series %s: %d runs, %d trajectories judged, %d notable\n",
		*series, len(res.Runs), len(res.Verdicts), res.Notable)
	for _, v := range res.Verdicts {
		if !v.Notable() && !*all {
			continue
		}
		fmt.Println(" ", v.String())
	}
	if res.Notable == 0 {
		fmt.Println("  no regressions detected")
	}
	return nil
}
