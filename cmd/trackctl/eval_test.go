package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perftrack/internal/service"
	"perftrack/internal/trackeval"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed — cmdEval and cmdRegressions write their reports to stdout.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

// TestEvalFilesAndRegressionsSurfaces closes the loop the evaluation
// layer exists for, entirely through the CLI: `trackctl eval -store`
// files scorecards for a series of "commits" (the newest from a tracker
// missing its displacement evaluator), a daemon boots over the store,
// and `trackctl regressions -series trackeval -metric MOTA` reports the
// quality regression.
func TestEvalFilesAndRegressionsSurfaces(t *testing.T) {
	dir := t.TempDir()

	// Five healthy commits. cmdEval would re-evaluate identically each
	// time, so file the clean scorecard under distinct run labels via
	// the same path cmdEval -store uses.
	clean, err := trackeval.Evaluate(trackeval.Options{Seeds: []uint64{1}, SkipDiagnosis: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"c1", "c2", "c3", "c4", "c5"} {
		if err := fileScorecard(clean, dir, "trackeval", label); err != nil {
			t.Fatal(err)
		}
	}

	// The sixth commit loses the displacement evaluator; run the whole
	// eval subcommand for it, gate included — the gate must fail.
	nerfCfg := trackeval.DefaultConfig()
	nerfCfg.DisableDisplacement = true
	nerfed, err := trackeval.Evaluate(trackeval.Options{
		Seeds: []uint64{1}, SkipDiagnosis: true, Config: &nerfCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nerfed.Gate(); err == nil {
		t.Fatal("nerfed scorecard passed the gate; the regression under test vanished")
	}
	if err := fileScorecard(nerfed, dir, "trackeval", "c6"); err != nil {
		t.Fatal(err)
	}

	s, err := service.New(service.Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	out, err := captureStdout(t, func() error {
		return cmdRegressions([]string{
			"-addr", srv.URL,
			"-series", "trackeval",
			"-metric", "MOTA",
			"-minrel", "0.02",
		})
	})
	if err != nil {
		t.Fatalf("trackctl regressions: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "6 runs") {
		t.Errorf("output misses the run count:\n%s", out)
	}
	if !strings.Contains(out, "regressed") || !strings.Contains(out, "MOTA") {
		t.Errorf("quality drop did not surface as a MOTA regression:\n%s", out)
	}
	if strings.Contains(out, "no regressions detected") {
		t.Errorf("regression reported as clean:\n%s", out)
	}
}

// TestEvalWritesScorecard covers the plain local path: table to stdout,
// canonical JSON to -o, gate passing on a healthy tracker.
func TestEvalWritesScorecard(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scorecard.json")
	stdout, err := captureStdout(t, func() error {
		return cmdEval([]string{"-seeds", "1", "-nodiag", "-gate", "-o", out})
	})
	if err != nil {
		t.Fatalf("trackctl eval: %v", err)
	}
	for _, want := range []string{"Tracking quality by scenario family", "TOTAL", "mergesplit"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("eval output misses %q:\n%s", want, stdout)
		}
	}
	canon, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(canon, []byte(`"mota"`)) || !bytes.Contains(canon, []byte(`"version"`)) {
		t.Errorf("scorecard JSON misses expected fields:\n%.200s", canon)
	}
}
