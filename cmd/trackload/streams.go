package main

// Stream bench mode (-streams N): instead of the job mix, trackload
// drives N concurrent live streams — one open-loop appender per stream,
// each pacing burst chunks at -qps appends/second against its stream's
// home node (streams are node-local; creation round-robins across the
// -addr list, appends stick). The report separates the two latency
// populations that matter for live ingestion: plain appends (index
// insertion only) and the appends that sealed a window (clustering
// seal + frame correlation + delta fan-out + durable persist), each as
// p50/p95/p99. Backpressure 429s are counted and retried on the next
// tick, so a saturated daemon shows up as rate loss + backpressure
// count, not client-side queueing.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"perftrack/internal/oracle"
	"perftrack/internal/service"
	"perftrack/internal/stream"
	"perftrack/internal/trace"
)

type streamScenario struct {
	Name          string   `json:"name"`
	Nodes         int      `json:"nodes"`
	Streams       int      `json:"streams"`
	TargetAPS     float64  `json:"targetAppendsPerSecPerStream"`
	AchievedAPS   float64  `json:"achievedAppendsPerSecTotal"`
	Duration      string   `json:"duration"`
	ChunkBursts   int      `json:"chunkBursts"`
	WindowCountN  int      `json:"windowCountN"`
	Appends       int      `json:"appends"`
	Bursts        int      `json:"bursts"`
	WindowsSealed int      `json:"windowsSealed"`
	Backpressure  int      `json:"backpressure"`
	Errors        int      `json:"errors"`
	Append        latStats `json:"append"`
	WindowClose   latStats `json:"windowClose"`
}

// streamBench runs the -streams mode and reduces the sample.
func streamBench(bases []string, client *http.Client, streams int, qps float64, window time.Duration,
	chunkBursts, countN, ranks, iters, phases int, seed uint64) (*streamScenario, error) {
	type result struct {
		appendMs  []float64
		closeMs   []float64
		appends   int
		bursts    int
		windows   int
		pressured int
		errors    int
	}
	results := make([]result, streams)
	var wg sync.WaitGroup
	// Stream ids are node-unique for the daemon's lifetime; salt them so
	// repeated bench runs against a long-lived daemon don't collide.
	salt := time.Now().UnixNano() & 0xffffff
	start := time.Now()
	for i := 0; i < streams; i++ {
		base := bases[i%len(bases)]
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			r := &results[i]
			// Pre-generate this appender's burst pool once; the
			// measurement loop cycles through it.
			tr := oracle.GenTraces(seed*1_000_003+uint64(i), fmt.Sprintf("load%d", i), ranks, iters, phases)
			id := fmt.Sprintf("load-%d-%x-%d", seed, salt, i)
			body, err := json.Marshal(service.StreamRequest{
				ID:     id,
				Label:  tr.Meta.Label,
				Ranks:  tr.Meta.Ranks,
				Window: stream.WindowSpec{CountN: countN, MaxWindows: 1 << 20},
			})
			if err != nil {
				r.errors++
				return
			}
			resp, err := client.Post(base+"/v1/streams", "application/json", bytes.NewReader(body))
			if err != nil {
				r.errors++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				r.errors++
				return
			}
			defer func() {
				resp, err := client.Post(base+"/v1/streams/"+id+"/finish", "application/json", nil)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()

			interval := time.Duration(float64(time.Second) / qps)
			next := time.Now()
			stop := time.Now().Add(window)
			off := 0
			for time.Now().Before(stop) {
				// Open loop: ticks are scheduled on the wall clock, not
				// after the previous response.
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				chunk := make([]trace.Burst, chunkBursts)
				for j := range chunk {
					chunk[j] = tr.Bursts[(off+j)%len(tr.Bursts)]
				}
				off = (off + chunkBursts) % len(tr.Bursts)
				var buf bytes.Buffer
				if err := trace.Write(&buf, &trace.Trace{Meta: tr.Meta, Bursts: chunk}); err != nil {
					r.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/streams/"+id+"/bursts", "text/plain", bytes.NewReader(buf.Bytes()))
				if err != nil {
					r.errors++
					continue
				}
				respBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				switch resp.StatusCode {
				case http.StatusOK:
					var ar service.StreamAppendResponse
					if err := json.Unmarshal(respBody, &ar); err != nil {
						r.errors++
						continue
					}
					r.appends++
					r.bursts += ar.Appended
					if n := len(ar.Sealed); n > 0 {
						r.windows += n
						r.closeMs = append(r.closeMs, ms)
					} else {
						r.appendMs = append(r.appendMs, ms)
					}
				case http.StatusTooManyRequests:
					r.pressured++
				default:
					r.errors++
				}
			}
		}(i, base)
	}
	wg.Wait()
	elapsed := time.Since(start)

	scen := &streamScenario{
		Streams:      streams,
		TargetAPS:    qps,
		Duration:     window.String(),
		ChunkBursts:  chunkBursts,
		WindowCountN: countN,
	}
	var appendMs, closeMs []float64
	for i := range results {
		r := &results[i]
		scen.Appends += r.appends
		scen.Bursts += r.bursts
		scen.WindowsSealed += r.windows
		scen.Backpressure += r.pressured
		scen.Errors += r.errors
		appendMs = append(appendMs, r.appendMs...)
		closeMs = append(closeMs, r.closeMs...)
	}
	scen.AchievedAPS = float64(scen.Appends) / elapsed.Seconds()
	scen.Append = reduce(appendMs)
	scen.WindowClose = reduce(closeMs)
	if scen.Appends == 0 {
		return scen, fmt.Errorf("no appends completed (%d errors)", scen.Errors)
	}
	if strings.Contains(scen.Duration, "m0s") { // cosmetic: 1m0s -> 1m
		scen.Duration = strings.TrimSuffix(scen.Duration, "0s")
	}
	return scen, nil
}
