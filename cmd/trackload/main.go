// Command trackload is the cluster load generator: it drives a running
// trackd deployment (one node or a -addr list of cluster nodes) with a
// mixed cold/cached job stream at a target QPS and reports the
// end-to-end latency distribution — p50/p95/p99 percentiles per traffic
// class plus a bucketed histogram — as a JSON scenario suitable for
// BENCH_cluster.json.
//
// Usage:
//
//	trackload [-addr URL,URL,...] [-qps Q] [-duration D] [-cached F]
//	          [-warm N] [-ranks N] [-iters N] [-phases N] [-seed N]
//	          [-binary] [-name LABEL] [-o FILE]
//	trackload -streams N [-qps Q] [-duration D] [-chunk N] [-window N] ...
//
// With -streams N the generator switches to stream bench mode: N live
// streams, each driven by an open-loop appender pacing burst chunks at
// -qps appends/second, with count windows of -window bursts. The JSON
// scenario separates plain-append latency from window-close latency
// (the appends that sealed a window) — the shape BENCH_stream.json
// records.
//
// Traffic model: submissions arrive open-loop on a fixed tick (no
// back-to-back closed-loop coordination, so queueing delay is visible
// in the tail). A -cached fraction resubmits one of -warm pre-warmed
// jobs — in a healthy deployment those are content-addressed hits
// answered without pipeline execution — and the rest are cold: a fresh
// fingerprint every time, exercising the full cluster path (route to
// owner, execute, replicate). Submissions round-robin across the -addr
// endpoints; each job's result poll stays on the node that accepted it
// (job IDs are node-local).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perftrack/internal/oracle"
	"perftrack/internal/service"
	"perftrack/internal/trace"
)

func main() {
	var (
		addrFlag = flag.String("addr", "http://127.0.0.1:7077", "trackd base URL(s), comma-separated; submissions round-robin across them")
		qps      = flag.Float64("qps", 25, "target submissions per second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		cachedF  = flag.Float64("cached", 0.5, "fraction of submissions drawn from the warm (cache-hit) pool")
		warm     = flag.Int("warm", 6, "warm pool size, pre-submitted before the measurement window")
		ranks    = flag.Int("ranks", 2, "ranks per generated trace")
		iters    = flag.Int("iters", 3, "iterations per generated trace")
		phases   = flag.Int("phases", 2, "phases per generated trace")
		seed     = flag.Uint64("seed", 1, "base seed for generated traces and the traffic mix")
		inflight = flag.Int("inflight", 256, "in-flight job cap; arrivals beyond it are shed (counted, not sent)")
		name     = flag.String("name", "", "scenario label in the JSON output (default derived from node count)")
		outPath  = flag.String("o", "", "write the scenario JSON to this file (default stdout)")
		binary   = flag.Bool("binary", false, "submit jobs as raw binary columnar (colbin) bodies instead of JSON text uploads")
		streams  = flag.Int("streams", 0, "stream bench mode: drive N live streams with open-loop appenders instead of the job mix")
		chunkB   = flag.Int("chunk", 32, "stream mode: bursts per append request")
		windowN  = flag.Int("window", 64, "stream mode: count-window size in bursts")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "trackload: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	var bases []string
	for _, p := range strings.Split(*addrFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			bases = append(bases, strings.TrimRight(p, "/"))
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "trackload: -addr needs at least one base URL")
		os.Exit(2)
	}
	label := *name
	if label == "" {
		label = fmt.Sprintf("%d-node", len(bases))
	}

	if *streams > 0 {
		scen, err := streamBench(bases, &http.Client{Timeout: 30 * time.Second},
			*streams, *qps, *duration, *chunkB, *windowN, *ranks, *iters, *phases, *seed)
		if scen != nil {
			scen.Name = label
			scen.Nodes = len(bases)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trackload:", err)
			os.Exit(1)
		}
		writeScenario(scen, *outPath)
		return
	}

	lg := &loadgen{
		bases:  bases,
		client: &http.Client{Timeout: 30 * time.Second},
		ranks:  *ranks, iters: *iters, phases: *phases,
		seed: *seed, binary: *binary,
	}
	if err := lg.warmPool(*warm); err != nil {
		fmt.Fprintln(os.Stderr, "trackload:", err)
		os.Exit(1)
	}
	scen := lg.run(*qps, *duration, *cachedF, *inflight)
	scen.Name = label
	scen.Nodes = len(bases)
	writeScenario(scen, *outPath)
}

// writeScenario marshals any scenario shape to -o or stdout.
func writeScenario(scen any, outPath string) {
	enc, err := json.MarshalIndent(scen, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackload:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trackload:", err)
			os.Exit(1)
		}
		return
	}
	os.Stdout.Write(enc)
}

// latStats summarises one traffic class's latency sample.
type latStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
	MaxMs  float64 `json:"maxMs"`
}

type bucket struct {
	LeMs  float64 `json:"leMs"` // upper bound; 0 marks the +Inf bucket
	Count int     `json:"count"`
}

type scenario struct {
	Name        string   `json:"name"`
	Nodes       int      `json:"nodes"`
	TargetQPS   float64  `json:"targetQps"`
	AchievedQPS float64  `json:"achievedQps"`
	Duration    string   `json:"duration"`
	CachedShare float64  `json:"cachedShare"`
	Submitted   int      `json:"submitted"`
	Completed   int      `json:"completed"`
	Errors      int      `json:"errors"`
	Shed        int      `json:"shed"`
	All         latStats `json:"all"`
	Cold        latStats `json:"cold"`
	Cached      latStats `json:"cached"`
	HistogramMs []bucket `json:"histogramMs"`
}

type sample struct {
	ms     float64
	cached bool
}

type loadgen struct {
	bases                []string
	client               *http.Client
	ranks, iters, phases int
	seed                 uint64
	binary               bool

	warmBodies [][]byte // marshalled warm-pool requests (cache hits after warmup)
	coldSeq    atomic.Uint64
	rr         atomic.Uint64 // round-robin cursor over bases

	mu      sync.Mutex
	samples []sample
	errors  int
}

// buildReq assembles one two-trace job request from the deterministic
// oracle generator; distinct (salt, n) pairs yield distinct fingerprints.
// With -binary the body is the two colbin encodings concatenated (the
// daemon sniffs the magic and skips the text parse entirely); otherwise
// it is the usual JSON text upload.
func (lg *loadgen) buildReq(salt string, n uint64) ([]byte, error) {
	ta := oracle.GenTraces(lg.seed*7919+2*n, fmt.Sprintf("%s%da", salt, n), lg.ranks, lg.iters, lg.phases)
	tb := oracle.GenTraces(lg.seed*7919+2*n+1, fmt.Sprintf("%s%db", salt, n), lg.ranks, lg.iters, lg.phases)
	if lg.binary {
		return append(trace.EncodeColbin(ta), trace.EncodeColbin(tb)...), nil
	}
	enc := func(t *trace.Trace) (string, error) {
		var sb strings.Builder
		if err := trace.Write(&sb, t); err != nil {
			return "", err
		}
		return sb.String(), nil
	}
	a, err := enc(ta)
	if err != nil {
		return nil, err
	}
	b, err := enc(tb)
	if err != nil {
		return nil, err
	}
	return json.Marshal(service.JobRequest{Traces: []string{a, b}})
}

// warmPool submits the cached-traffic jobs once and waits for their
// results, so measurement-window resubmissions are content-addressed
// hits everywhere in the cluster.
func (lg *loadgen) warmPool(n int) error {
	for i := 0; i < n; i++ {
		body, err := lg.buildReq("warm", uint64(i))
		if err != nil {
			return err
		}
		lg.warmBodies = append(lg.warmBodies, body)
		base := lg.bases[i%len(lg.bases)]
		if _, err := lg.oneJob(base, body); err != nil {
			return fmt.Errorf("warming pool on %s: %w", base, err)
		}
	}
	return nil
}

// oneJob submits body to base and long-polls the job to a terminal
// state, returning the end-to-end latency.
func (lg *loadgen) oneJob(base string, body []byte) (time.Duration, error) {
	start := time.Now()
	ctype := "application/json"
	if trace.IsColbin(body) {
		ctype = "application/octet-stream"
	}
	resp, err := lg.client.Post(base+"/v1/jobs", ctype, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(respBody)))
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(respBody, &view); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := lg.client.Get(base + "/v1/jobs/" + view.ID + "/result?wait=2s")
		if err != nil {
			return 0, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return time.Since(start), nil
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("job %s: still pending after 1m", view.ID)
			}
		default:
			return 0, fmt.Errorf("job %s: %s: %s", view.ID, resp.Status, strings.TrimSpace(string(b)))
		}
	}
}

// run drives the open-loop measurement window and reduces the sample.
func (lg *loadgen) run(qps float64, window time.Duration, cachedFrac float64, inflightCap int) *scenario {
	interval := time.Duration(float64(time.Second) / qps)
	rng := rand.New(rand.NewPCG(lg.seed, 0x10ad_9e4e))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(window)

	var wg sync.WaitGroup
	slots := make(chan struct{}, inflightCap)
	submitted, shed := 0, 0
	start := time.Now()
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			cached := rng.Float64() < cachedFrac
			var body []byte
			var err error
			if cached {
				body = lg.warmBodies[rng.IntN(len(lg.warmBodies))]
			} else if body, err = lg.buildReq("cold", lg.coldSeq.Add(1)); err != nil {
				lg.fail(err)
				continue
			}
			select {
			case slots <- struct{}{}:
			default:
				shed++ // saturated: shed the arrival rather than queueing client-side
				continue
			}
			submitted++
			base := lg.bases[lg.rr.Add(1)%uint64(len(lg.bases))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				d, err := lg.oneJob(base, body)
				if err != nil {
					lg.fail(err)
					return
				}
				lg.mu.Lock()
				lg.samples = append(lg.samples, sample{float64(d) / float64(time.Millisecond), cached})
				lg.mu.Unlock()
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	scen := &scenario{
		TargetQPS:   qps,
		Duration:    window.String(),
		CachedShare: cachedFrac,
		Submitted:   submitted,
		Completed:   len(lg.samples),
		Errors:      lg.errors,
		Shed:        shed,
		AchievedQPS: float64(len(lg.samples)) / elapsed.Seconds(),
	}
	var all, cold, cachedMs []float64
	for _, s := range lg.samples {
		all = append(all, s.ms)
		if s.cached {
			cachedMs = append(cachedMs, s.ms)
		} else {
			cold = append(cold, s.ms)
		}
	}
	scen.All = reduce(all)
	scen.Cold = reduce(cold)
	scen.Cached = reduce(cachedMs)
	scen.HistogramMs = histogram(all)
	return scen
}

func (lg *loadgen) fail(err error) {
	lg.mu.Lock()
	lg.errors++
	n := lg.errors
	lg.mu.Unlock()
	if n <= 5 {
		fmt.Fprintln(os.Stderr, "trackload:", err)
	}
}

// reduce computes the percentile summary of a millisecond sample.
func reduce(ms []float64) latStats {
	if len(ms) == 0 {
		return latStats{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	round := func(v float64) float64 { return float64(int(v*1000)) / 1000 }
	return latStats{
		Count:  len(sorted),
		P50Ms:  round(pct(0.50)),
		P95Ms:  round(pct(0.95)),
		P99Ms:  round(pct(0.99)),
		MeanMs: round(sum / float64(len(sorted))),
		MaxMs:  round(sorted[len(sorted)-1]),
	}
}

// histogram buckets the sample into exponential millisecond bounds;
// the trailing bucket (LeMs 0) counts everything past the last bound.
func histogram(ms []float64) []bucket {
	bounds := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	out := make([]bucket, len(bounds)+1)
	for i, b := range bounds {
		out[i].LeMs = b
	}
	for _, v := range ms {
		placed := false
		for i, b := range bounds {
			if v <= b {
				out[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			out[len(bounds)].Count++
		}
	}
	return out
}
