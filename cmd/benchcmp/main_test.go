package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadBaselineEdgeCases(t *testing.T) {
	tests := []struct {
		name      string
		json      string
		wantErr   bool
		wantKeys  []string
		wantWarns int
	}{
		{
			name:     "clean",
			json:     `{"suite":"core","results":[{"name":"BenchmarkA","ns_per_op":100},{"name":"BenchmarkB","ns_per_op":2.5}]}`,
			wantKeys: []string{"BenchmarkA", "BenchmarkB"},
		},
		{
			name:      "zero entry skipped with warning",
			json:      `{"results":[{"name":"BenchmarkA","ns_per_op":0},{"name":"BenchmarkB","ns_per_op":50}]}`,
			wantKeys:  []string{"BenchmarkB"},
			wantWarns: 1,
		},
		{
			name:      "negative entry skipped with warning",
			json:      `{"results":[{"name":"BenchmarkA","ns_per_op":-3},{"name":"BenchmarkB","ns_per_op":50}]}`,
			wantKeys:  []string{"BenchmarkB"},
			wantWarns: 1,
		},
		{
			// encoding/json rejects out-of-range numbers like 1e999, so
			// an Inf can only enter through a hand-edited file — it must
			// surface as a loading error, not a silent pass.
			name:    "out-of-range entry is a parse error",
			json:    `{"results":[{"name":"BenchmarkA","ns_per_op":1e999},{"name":"BenchmarkB","ns_per_op":50}]}`,
			wantErr: true,
		},
		{
			name:      "all entries unusable is an error",
			json:      `{"results":[{"name":"BenchmarkA","ns_per_op":0},{"name":"BenchmarkB","ns_per_op":-1}]}`,
			wantErr:   true,
			wantWarns: 2,
		},
		{
			name:    "empty results is an error",
			json:    `{"suite":"core","results":[]}`,
			wantErr: true,
		},
		{
			name:    "malformed json is an error",
			json:    `{"results":`,
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, baseline, warns, err := loadBaseline([]byte(tt.json), "test.json")
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if len(warns) != tt.wantWarns {
				t.Errorf("warnings = %v, want %d", warns, tt.wantWarns)
			}
			if tt.wantErr {
				return
			}
			if len(baseline) != len(tt.wantKeys) {
				t.Fatalf("baseline = %v, want keys %v", baseline, tt.wantKeys)
			}
			for _, k := range tt.wantKeys {
				if !usable(baseline[k]) {
					t.Errorf("baseline[%s] = %v, want usable", k, baseline[k])
				}
			}
		})
	}
}

func TestParseBenchEdgeCases(t *testing.T) {
	tests := []struct {
		name      string
		input     string
		want      map[string]float64
		wantWarns int
	}{
		{
			name:  "typical output",
			input: "goos: linux\nBenchmarkCoreTrack-8   655   3784987 ns/op   12 B/op\nPASS\n",
			want:  map[string]float64{"BenchmarkCoreTrack": 3784987},
		},
		{
			name:  "no GOMAXPROCS suffix",
			input: "BenchmarkX 10 125.5 ns/op\n",
			want:  map[string]float64{"BenchmarkX": 125.5},
		},
		{
			name:  "first measurement wins on -count repeats",
			input: "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 90 ns/op\n",
			want:  map[string]float64{"BenchmarkX": 100},
		},
		{
			// A zero ns/op line (seen from sub-nanosecond ops rounded
			// down) must not enter the geomean as a 0-ratio.
			name:      "zero measurement skipped with warning",
			input:     "BenchmarkX-4 1000000000 0 ns/op\nBenchmarkY-4 10 50 ns/op\n",
			want:      map[string]float64{"BenchmarkY": 50},
			wantWarns: 1,
		},
		{
			name:  "unrelated lines ignored",
			input: "ok  \tperftrack/internal/core\t1.2s\n--- PASS: TestX\n",
			want:  map[string]float64{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var echo bytes.Buffer
			got, warns, err := parseBench(strings.NewReader(tt.input), &echo)
			if err != nil {
				t.Fatal(err)
			}
			if len(warns) != tt.wantWarns {
				t.Errorf("warnings = %v, want %d", warns, tt.wantWarns)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("parsed %v, want %v", got, tt.want)
			}
			for k, v := range tt.want {
				if got[k] != v {
					t.Errorf("%s = %v, want %v", k, got[k], v)
				}
			}
			if echo.String() != tt.input {
				t.Errorf("echo = %q, want the raw input passed through", echo.String())
			}
		})
	}
}

func TestCompareVerdicts(t *testing.T) {
	baseline := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}
	tests := []struct {
		name     string
		current  map[string]float64
		wantCode int
		wantOut  string
	}{
		{
			name:     "within tolerance",
			current:  map[string]float64{"BenchmarkA": 105, "BenchmarkB": 210},
			wantCode: 0,
			wantOut:  "benchcmp: OK",
		},
		{
			name:     "regressed",
			current:  map[string]float64{"BenchmarkA": 200, "BenchmarkB": 400},
			wantCode: 1,
		},
		{
			name:     "improvement on one side offsets the other",
			current:  map[string]float64{"BenchmarkA": 50, "BenchmarkB": 400},
			wantCode: 0,
		},
		{
			name:     "nothing matched",
			current:  map[string]float64{"BenchmarkNew": 10},
			wantCode: 2,
		},
		{
			name:     "new benchmark ignored by the gate",
			current:  map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 1e9},
			wantCode: 0,
			wantOut:  "(no baseline, ignored)",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := compare(&out, &errOut, "test.json", "core", baseline, tt.current, 1.15)
			if code != tt.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout: %s\nstderr: %s", code, tt.wantCode, out.String(), errOut.String())
			}
			if tt.wantOut != "" && !strings.Contains(out.String(), tt.wantOut) {
				t.Errorf("stdout misses %q:\n%s", tt.wantOut, out.String())
			}
		})
	}
}

// TestRunEndToEnd drives the command whole: flag parsing, baseline file,
// stdin scan, verdict and exit code.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	base := `{"suite":"test","results":[
		{"name":"BenchmarkA","ns_per_op":100},
		{"name":"BenchmarkBroken","ns_per_op":0},
		{"name":"BenchmarkGone","ns_per_op":500}]}`
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", path},
		strings.NewReader("BenchmarkA-8 100 104 ns/op\n"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errOut.String())
	}
	for _, want := range []string{"ratio 1.040", "1 baseline benchmark(s) not exercised", "benchcmp: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout misses %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "BenchmarkBroken") {
		t.Errorf("stderr misses the unusable-baseline warning:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"-baseline", path, "-tolerance", "1.1"},
		strings.NewReader("BenchmarkA-8 100 150 ns/op\n"), &out, &errOut)
	if code != 1 {
		t.Fatalf("regression exit code = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "FAIL") {
		t.Errorf("stderr misses FAIL:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code = run([]string{"-baseline", filepath.Join(dir, "missing.json")}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("missing baseline exit code = %d, want 2", code)
	}
}
