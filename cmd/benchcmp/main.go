// Command benchcmp compares `go test -bench` output on stdin against the
// committed baseline in a BENCH_*.json file and fails (exit 1) when the
// geometric-mean time ratio regresses past the tolerance. It is the
// in-repo replacement for benchstat that `make bench-compare` and CI run:
// no external dependencies, one deterministic gate.
//
//	go test -run '^$' -bench BenchmarkCore ./... | benchcmp -baseline BENCH_core.json
//
// Only benchmarks present in the baseline participate; new benchmarks are
// reported but ignored by the gate. The geomean (rather than a per-bench
// gate) keeps single-benchmark noise on busy CI machines from tripping the
// alarm while still catching a real broad regression.
//
// Baseline entries with zero, negative, or non-finite ns/op — the residue
// of a botched baseline regeneration — are skipped with a warning rather
// than silently dropped or allowed to poison the geomean.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type baselineFile struct {
	Suite   string `json:"suite"`
	Results []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
}

// benchLine matches e.g. "BenchmarkCoreNNNearest-8   655   3784987 ns/op ..."
// (the -N GOMAXPROCS suffix is optional: single-CPU runs omit it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+(?:[eE][+-]?\d+)?) ns/op`)

// usable reports whether a ns/op value can participate in a ratio: a
// zero baseline would divide to +Inf, a NaN or Inf would absorb the
// whole geomean.
func usable(ns float64) bool {
	return ns > 0 && !math.IsInf(ns, 0) && !math.IsNaN(ns)
}

// loadBaseline parses the committed baseline, returning the usable
// measurements and one warning per entry skipped as unusable.
func loadBaseline(raw []byte, path string) (suite string, baseline map[string]float64, warnings []string, err error) {
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return "", nil, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline = map[string]float64{}
	for _, r := range base.Results {
		if !usable(r.NsPerOp) {
			warnings = append(warnings,
				fmt.Sprintf("baseline %s: skipping %s: unusable ns_per_op %v", path, r.Name, r.NsPerOp))
			continue
		}
		baseline[r.Name] = r.NsPerOp
	}
	if len(baseline) == 0 {
		return "", nil, warnings, fmt.Errorf("no usable results in %s", path)
	}
	return base.Suite, baseline, warnings, nil
}

// parseBench scans `go test -bench` output, echoing every line to echo,
// and returns the first measurement of each benchmark (later -count runs
// of the same name would skew toward warmed caches). Unusable values are
// skipped with a warning.
func parseBench(r io.Reader, echo io.Writer) (map[string]float64, []string, error) {
	current := map[string]float64{}
	var warnings []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line) // pass the raw output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || !usable(ns) {
			warnings = append(warnings, fmt.Sprintf("skipping %s: unusable measurement %q", m[1], m[3]))
			continue
		}
		if _, seen := current[m[1]]; !seen {
			current[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, warnings, fmt.Errorf("reading stdin: %w", err)
	}
	return current, warnings, nil
}

// compare prints the per-benchmark table and the geomean verdict to out.
// It returns exit code 0 (within tolerance), 1 (regressed), or 2 (no
// benchmark matched the baseline).
func compare(out, errOut io.Writer, baselinePath, suite string, baseline, current map[string]float64, tolerance float64) int {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	matched := 0
	fmt.Fprintf(out, "\nbenchcmp vs %s (%s):\n", baselinePath, suite)
	for _, name := range names {
		bn, ok := baseline[name]
		if !ok {
			fmt.Fprintf(out, "  %-40s %12.0f ns/op  (no baseline, ignored)\n", name, current[name])
			continue
		}
		ratio := current[name] / bn
		logSum += math.Log(ratio)
		matched++
		fmt.Fprintf(out, "  %-40s %12.0f ns/op  baseline %12.0f  ratio %.3f\n", name, current[name], bn, ratio)
	}
	if matched == 0 {
		fmt.Fprintln(errOut, "benchcmp: no benchmarks matched the baseline")
		return 2
	}
	missing := 0
	for name := range baseline {
		if _, ok := current[name]; !ok {
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(out, "  (%d baseline benchmark(s) not exercised in this run)\n", missing)
	}
	geomean := math.Exp(logSum / float64(matched))
	fmt.Fprintf(out, "geomean time ratio over %d benchmarks: %.3f (tolerance %.2f)\n", matched, geomean, tolerance)
	if geomean > tolerance {
		fmt.Fprintf(errOut, "benchcmp: FAIL — geomean regression %.1f%% exceeds %.1f%%\n",
			(geomean-1)*100, (tolerance-1)*100)
		return 1
	}
	fmt.Fprintln(out, "benchcmp: OK")
	return 0
}

// run is the whole command with its streams and exit code surfaced for
// testing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_core.json", "committed baseline JSON")
	tolerance := fs.Float64("tolerance", 1.15, "maximum allowed geomean time ratio (current/baseline)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}
	suite, baseline, warnings, err := loadBaseline(raw, *baselinePath)
	for _, w := range warnings {
		fmt.Fprintf(stderr, "benchcmp: warning: %s\n", w)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}

	current, warnings, err := parseBench(stdin, stdout)
	for _, w := range warnings {
		fmt.Fprintf(stderr, "benchcmp: warning: %s\n", w)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}

	return compare(stdout, stderr, *baselinePath, suite, baseline, current, *tolerance)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
