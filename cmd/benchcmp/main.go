// Command benchcmp compares `go test -bench` output on stdin against the
// committed baseline in a BENCH_*.json file and fails (exit 1) when the
// geometric-mean time ratio regresses past the tolerance. It is the
// in-repo replacement for benchstat that `make bench-compare` and CI run:
// no external dependencies, one deterministic gate.
//
//	go test -run '^$' -bench BenchmarkCore ./... | benchcmp -baseline BENCH_core.json
//
// Only benchmarks present in the baseline participate; new benchmarks are
// reported but ignored by the gate. The geomean (rather than a per-bench
// gate) keeps single-benchmark noise on busy CI machines from tripping the
// alarm while still catching a real broad regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type baselineFile struct {
	Suite   string `json:"suite"`
	Results []struct {
		Name   string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
}

// benchLine matches e.g. "BenchmarkCoreNNNearest-8   655   3784987 ns/op ..."
// (the -N GOMAXPROCS suffix is optional: single-CPU runs omit it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_core.json", "committed baseline JSON")
	tolerance := flag.Float64("tolerance", 1.15, "maximum allowed geomean time ratio (current/baseline)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	baseline := map[string]float64{}
	for _, r := range base.Results {
		if r.NsPerOp > 0 {
			baseline[r.Name] = r.NsPerOp
		}
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: no usable results in %s\n", *baselinePath)
		os.Exit(2)
	}

	current := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			continue
		}
		// Keep the first measurement of each benchmark (later -count runs
		// of the same name would skew toward warmed caches).
		if _, seen := current[m[1]]; !seen {
			current[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: reading stdin: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	matched := 0
	fmt.Printf("\nbenchcmp vs %s (%s):\n", *baselinePath, base.Suite)
	for _, name := range names {
		bn, ok := baseline[name]
		if !ok {
			fmt.Printf("  %-40s %12.0f ns/op  (no baseline, ignored)\n", name, current[name])
			continue
		}
		ratio := current[name] / bn
		logSum += math.Log(ratio)
		matched++
		fmt.Printf("  %-40s %12.0f ns/op  baseline %12.0f  ratio %.3f\n", name, current[name], bn, ratio)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks matched the baseline")
		os.Exit(2)
	}
	missing := 0
	for name := range baseline {
		if _, ok := current[name]; !ok {
			missing++
		}
	}
	if missing > 0 {
		fmt.Printf("  (%d baseline benchmark(s) not exercised in this run)\n", missing)
	}
	geomean := math.Exp(logSum / float64(matched))
	fmt.Printf("geomean time ratio over %d benchmarks: %.3f (tolerance %.2f)\n", matched, geomean, *tolerance)
	if geomean > *tolerance {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL — geomean regression %.1f%% exceeds %.1f%%\n",
			(geomean-1)*100, (*tolerance-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchcmp: OK")
}
