package main

import (
	"perftrack/internal/apps"
)

// studyT aliases the catalog study type so main.go stays readable.
type studyT = apps.Study

func studyByName(name string) (studyT, error) { return apps.ByName(name) }

func studyNames() []string { return apps.Names() }
