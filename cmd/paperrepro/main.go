// Command paperrepro regenerates every table and figure of the paper's
// evaluation from the synthetic catalog studies, writing SVG/text
// artefacts to an output directory and printing the tables to stdout.
//
// Usage:
//
//	paperrepro [-out DIR] [-only ID] [-ascii]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// IDs: tab1 tab2 tab3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 fig12 (default: everything).
//
// -cpuprofile and -memprofile write runtime/pprof profiles covering the
// whole reproduction run; inspect them with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"perftrack/internal/metrics"
	"perftrack/internal/plot"
	"perftrack/internal/report"
)

func main() {
	outDir := flag.String("out", "out", "directory for SVG and text artefacts")
	only := flag.String("only", "", "regenerate a single artefact (e.g. fig7, tab2)")
	ascii := flag.Bool("ascii", false, "also print ASCII renderings of the plots")
	experiments := flag.String("experiments", "", "write the paper-vs-measured Markdown record to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the end-of-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro: memprofile:", err)
			}
		}()
	}

	if *experiments != "" {
		if err := writeExperiments(*experiments); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*outDir, *only, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

// writeExperiments runs the whole catalog and generates the markdown
// reproduction record.
func writeExperiments(path string) error {
	results, err := report.RunAll()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteExperiments(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

type generator struct {
	outDir string
	ascii  bool
	// cache of study results so shared studies run once
	cache map[string]*report.StudyResult
}

func (g *generator) study(name string) (*report.StudyResult, error) {
	if sr, ok := g.cache[name]; ok {
		return sr, nil
	}
	st, err := catalog(name)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "running study %s...\n", name)
	sr, err := report.RunStudy(st)
	if err != nil {
		return nil, err
	}
	if !sr.Result.Diagnostics.Clean() {
		fmt.Fprintf(os.Stderr, "study %s ran degraded: %s\n", name, sr.Result.Diagnostics.Summary())
	}
	g.cache[name] = sr
	return sr, nil
}

func run(outDir, only string, ascii bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	g := &generator{outDir: outDir, ascii: ascii, cache: map[string]*report.StudyResult{}}

	artefacts := []struct {
		id string
		fn func(*generator) error
	}{
		{"fig1", genFig1}, {"fig3", genFig3}, {"fig4", genFig4},
		{"tab1", genTab1}, {"fig5", genFig5}, {"fig6", genFig6},
		{"fig7", genFig7}, {"tab2", genTab2}, {"fig8", genFig8},
		{"tab3", genTab3}, {"fig9", genFig9}, {"fig10", genFig10},
		{"fig11", genFig11}, {"fig12", genFig12},
	}
	matched := false
	for _, a := range artefacts {
		if only != "" && a.id != only {
			continue
		}
		matched = true
		if err := a.fn(g); err != nil {
			return fmt.Errorf("%s: %w", a.id, err)
		}
	}
	if !matched {
		return fmt.Errorf("unknown artefact %q", only)
	}
	return nil
}

func catalog(name string) (st studyT, err error) {
	return studyByName(name)
}

func (g *generator) writeFile(name, content string) error {
	path := filepath.Join(g.outDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func banner(id, desc string) {
	fmt.Printf("\n===== %s: %s =====\n", strings.ToUpper(id), desc)
}

func genFig1(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig1", "WRF cluster structure, 128 vs 256 tasks")
	for fi := range sr.Result.Frames {
		sc := report.FrameScatter(sr, fi, false)
		if err := g.writeFile(fmt.Sprintf("fig1_wrf_frame%d.svg", fi), sc.SVG()); err != nil {
			return err
		}
		if g.ascii {
			fmt.Println(sc.ASCII(0, 0))
		}
	}
	norm := report.NormalizedScatter(sr, 1, false)
	if err := g.writeFile("fig1_wrf_frame1_normalised.svg", norm.SVG()); err != nil {
		return err
	}
	fmt.Println(sr.Summary())
	return nil
}

func genFig3(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig3", "WRF displacement correlation matrix")
	text := report.DisplacementText(sr, 0)
	fmt.Println(text)
	return g.writeFile("fig3_wrf_displacement.txt", text)
}

func genFig4(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig4", "WRF SPMD timelines (start of one iteration)")
	for fi := range sr.Result.Frames {
		tl := report.TimelineOf(sr, fi, true, 2_000_000_000)
		if err := g.writeFile(fmt.Sprintf("fig4_wrf_timeline%d.svg", fi), tl.SVG()); err != nil {
			return err
		}
		if g.ascii {
			fmt.Println(tl.ASCII(0, 0))
		}
	}
	return nil
}

func genTab1(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("tab1", "WRF call-stack correlations")
	t := report.Table1(sr, 0)
	fmt.Println(t)
	return g.writeFile("tab1_wrf_callstacks.txt", t.String())
}

func genFig5(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig5", "WRF execution-sequence correlations")
	text := report.SequenceText(sr, 0)
	fmt.Println(text)
	return g.writeFile("fig5_wrf_sequence.txt", text)
}

func genFig6(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig6", "WRF output frames, tracked regions renamed")
	strip := &plot.Filmstrip{Title: "WRF tracked performance space"}
	for fi := range sr.Result.Frames {
		sc := report.FrameScatter(sr, fi, true)
		strip.Frames = append(strip.Frames, sc)
		if err := g.writeFile(fmt.Sprintf("fig6_wrf_tracked%d.svg", fi), sc.SVG()); err != nil {
			return err
		}
		if g.ascii {
			fmt.Println(sc.ASCII(0, 0))
		}
	}
	// The paper displays the sequence "in a simple animation".
	if err := g.writeFile("fig6_wrf_animation.svg", strip.AnimatedSVG()); err != nil {
		return err
	}
	return g.writeFile("fig6_wrf_filmstrip.svg", strip.GridSVG())
}

func genFig7(g *generator) error {
	sr, err := g.study("WRF")
	if err != nil {
		return err
	}
	banner("fig7", "WRF performance trends")
	ipc := report.TrendChart(sr, metrics.IPC, 0.03, false)
	if err := g.writeFile("fig7a_wrf_ipc.svg", ipc.SVG()); err != nil {
		return err
	}
	ins := report.TrendChart(sr, metrics.Instructions, 0, true)
	if err := g.writeFile("fig7b_wrf_instructions.svg", ins.SVG()); err != nil {
		return err
	}
	t := report.TrendTable(sr, metrics.IPC)
	fmt.Println(t)
	if g.ascii {
		fmt.Println(ipc.ASCII(0, 0))
	}
	return g.writeFile("fig7_wrf_ipc_table.txt", t.String())
}

func genTab2(g *generator) error {
	banner("tab2", "summary of all ten case studies")
	var results []*report.StudyResult
	for _, name := range studyNames() {
		sr, err := g.study(name)
		if err != nil {
			return err
		}
		results = append(results, sr)
	}
	t := report.Table2(results)
	fmt.Println(t)
	return g.writeFile("tab2_summary.txt", t.String())
}

func genFig8(g *generator) error {
	sr, err := g.study("CGPOP")
	if err != nil {
		return err
	}
	banner("fig8", "CGPOP input frames (2 platforms x 2 compilers)")
	for fi := range sr.Result.Frames {
		sc := report.FrameScatter(sr, fi, false)
		if err := g.writeFile(fmt.Sprintf("fig8_cgpop_frame%d.svg", fi), sc.SVG()); err != nil {
			return err
		}
		if g.ascii {
			fmt.Println(sc.ASCII(0, 0))
		}
	}
	return nil
}

func genTab3(g *generator) error {
	sr, err := g.study("CGPOP")
	if err != nil {
		return err
	}
	banner("tab3", "CGPOP performance results")
	t := report.Table3(sr)
	fmt.Println(t)
	return g.writeFile("tab3_cgpop.txt", t.String())
}

func genFig9(g *generator) error {
	sr, err := g.study("NAS BT")
	if err != nil {
		return err
	}
	banner("fig9", "NAS BT output frames (classes W, A, B, C)")
	for fi := range sr.Result.Frames {
		sc := report.FrameScatter(sr, fi, true)
		if err := g.writeFile(fmt.Sprintf("fig9_nasbt_tracked%d.svg", fi), sc.SVG()); err != nil {
			return err
		}
		if g.ascii {
			fmt.Println(sc.ASCII(0, 0))
		}
	}
	return nil
}

func genFig10(g *generator) error {
	sr, err := g.study("NAS BT")
	if err != nil {
		return err
	}
	banner("fig10", "NAS BT trends: IPC and L2 misses")
	ipc := report.TrendChart(sr, metrics.IPC, 0, false)
	if err := g.writeFile("fig10a_nasbt_ipc.svg", ipc.SVG()); err != nil {
		return err
	}
	l2 := report.TrendChart(sr, metrics.L2MissesPerKInstr, 0, false)
	if err := g.writeFile("fig10b_nasbt_l2.svg", l2.SVG()); err != nil {
		return err
	}
	fmt.Println(report.TrendTable(sr, metrics.IPC))
	fmt.Println(report.TrendTable(sr, metrics.L2MissesPerKInstr))
	if g.ascii {
		fmt.Println(ipc.ASCII(0, 0))
	}
	return nil
}

func genFig11(g *generator) error {
	sr, err := g.study("MR-Genesis")
	if err != nil {
		return err
	}
	banner("fig11", "MR-Genesis: node-sharing impact")
	ipc := report.TrendChart(sr, metrics.IPC, 0, false)
	if err := g.writeFile("fig11a_mrgenesis_ipc.svg", ipc.SVG()); err != nil {
		return err
	}
	corr := report.MetricCorrelationChart(sr, 1, []metrics.Metric{
		metrics.IPC, metrics.L2DMisses, metrics.TLBMisses,
	})
	if err := g.writeFile("fig11b_mrgenesis_correlation.svg", corr.SVG()); err != nil {
		return err
	}
	fmt.Println(report.TrendTable(sr, metrics.IPC))
	if g.ascii {
		fmt.Println(ipc.ASCII(0, 0))
	}
	return nil
}

func genFig12(g *generator) error {
	sr, err := g.study("HydroC")
	if err != nil {
		return err
	}
	banner("fig12", "HydroC: block-size impact")
	ins := report.TrendChart(sr, metrics.Instructions, 0, false)
	if err := g.writeFile("fig12a_hydroc_instructions.svg", ins.SVG()); err != nil {
		return err
	}
	ipc := report.TrendChart(sr, metrics.IPC, 0, false)
	if err := g.writeFile("fig12b_hydroc_ipc.svg", ipc.SVG()); err != nil {
		return err
	}
	l1 := report.TrendChart(sr, metrics.L1DMisses, 0, false)
	if err := g.writeFile("fig12c_hydroc_l1.svg", l1.SVG()); err != nil {
		return err
	}
	fmt.Println(report.TrendTable(sr, metrics.IPC))
	fmt.Println(report.TrendTable(sr, metrics.L1DMisses))
	if g.ascii {
		fmt.Println(ipc.ASCII(0, 0))
	}
	return nil
}
