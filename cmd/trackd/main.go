// Command trackd is the tracking daemon: it serves the perftrack pipeline
// over HTTP with a bounded job queue, a worker pool, a content-addressed
// result cache, and Prometheus-text metrics.
//
// Usage:
//
//	trackd [-addr HOST:PORT] [-workers N] [-queue N] [-timeout D]
//	       [-stage-timeout D] [-cache-entries N] [-cache-bytes N]
//	       [-store DIR] [-store-segment-bytes N] [-store-sync-every N]
//	       [-store-retries N] [-no-journal] [-journal-sync-every N]
//	       [-trace-cache DIR] [-trace-cache-bytes N] [-no-trace-cache]
//	       [-breaker-threshold N] [-breaker-cooldown D]
//	       [-stream-sessions N] [-stream-pending N] [-stream-events N]
//	       [-node-id ID -peers ID=URL,...] [-replicas N] [-probe-interval D]
//	       [-pprof-addr HOST:PORT]
//
// -pprof-addr mounts net/http/pprof on a dedicated listener (separate
// from the service address, so profiling is never exposed to clients);
// point `go tool pprof` at http://HOST:PORT/debug/pprof/profile or
// /debug/pprof/heap to profile a live daemon.
//
// With -store, every completed analysis is also appended to the perfdb
// persistent store in DIR: results survive daemon restarts (cache misses
// read through the store), and the /v1/results and /v1/series endpoints
// expose the stored history, trajectory chaining, and regression
// detection. A store also enables the job journal (disable with
// -no-journal): every submission is fsynced as an intent before its 202,
// so acknowledged jobs survive crashes and are replayed on the next
// startup — /readyz answers 503 until the replay backlog is done.
// Failed store appends retry with jittered backoff (-store-retries);
// sustained failures trip a circuit breaker (-breaker-threshold,
// -breaker-cooldown) that degrades the daemon to read-only 503s instead
// of losing work.
//
// Trace ingestion accepts both the perftrack text format and the binary
// columnar (colbin) format — POST bodies are sniffed by magic on
// /v1/jobs and stream appends. With -store (or an explicit -trace-cache
// DIR), text uploads are converted to colbin on first read and cached
// content-addressed beside the perfdb segments, so repeat submissions
// of the same text skip the text parse entirely (-trace-cache-bytes
// bounds the cache; -no-trace-cache disables it).
//
// The daemon also hosts live streams (POST /v1/streams): resident
// sessions that ingest burst chunks as a run executes, seal fixed- or
// count-based windows incrementally, and fan rolling deltas out to
// SSE/long-poll subscribers on /v1/streams/{id}/events. With -store,
// every sealed window is persisted before its append is acknowledged
// and live streams resume from their sealed windows after a crash
// (only the open window is lost). -stream-sessions caps resident
// sessions, -stream-pending bounds the append chunks racing for one
// session before 429 backpressure, and -stream-events sizes the
// per-stream event replay ring.
//
// With -node-id and -peers (which requires -store), trackd joins a
// sharded cluster: jobs route by consistent hashing over their content
// fingerprint to an owner node, completed results replicate to
// -replicas ring successors, any node answers reads for the whole
// cluster via scatter-gather, and a background probe loop
// (-probe-interval) tracks peer liveness, rebalancing replicas on every
// membership change. The -peers list is the full static membership,
// including this node's own id and URL.
//
// The daemon prints "trackd: listening on ADDR" once the socket is bound
// (with the resolved port when :0 was requested), and shuts down
// gracefully on SIGINT/SIGTERM: in-flight jobs are canceled through their
// contexts, queued jobs are marked canceled, and the HTTP server drains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // pprof handlers for the -pprof-addr listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"perftrack/internal/mesh"
	"perftrack/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
		workers       = flag.Int("workers", defaultWorkers(), "worker pool size")
		queueDepth    = flag.Int("queue", 64, "job queue depth (full queue replies 429)")
		timeout       = flag.Duration("timeout", 2*time.Minute, "per-job execution timeout")
		stageTimeout  = flag.Duration("stage-timeout", 0, "per-pipeline-stage timeout inside the job timeout (0 disables)")
		cacheEntries  = flag.Int("cache-entries", 256, "result cache entry bound")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "result cache byte bound")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		storeDir      = flag.String("store", "", "perfdb directory; empty disables the persistent result store")
		storeSegment  = flag.Int64("store-segment-bytes", 0, "perfdb segment size bound (0 = default 64 MiB)")
		storeSync     = flag.Int("store-sync-every", 0, "perfdb fsync batch size (0 = default 8, 1 = every append)")
		storeRetries  = flag.Int("store-retries", 0, "retries for a failed store append (0 = default 3)")
		noJournal     = flag.Bool("no-journal", false, "disable the crash-durable job journal even with -store")
		traceCache    = flag.String("trace-cache", "", "trace conversion cache directory (default <store>/tracecache; requires -store or an explicit dir)")
		traceCacheMax = flag.Int64("trace-cache-bytes", 0, "trace conversion cache byte bound (0 = default 256 MiB)")
		noTraceCache  = flag.Bool("no-trace-cache", false, "disable the convert-on-first-read trace cache")
		journalSync   = flag.Int("journal-sync-every", 0, "journal resolution fsync batch size (0 = default 8; intents always fsync)")
		brkThreshold  = flag.Int("breaker-threshold", 0, "consecutive failures that open a circuit breaker (0 = default 5)")
		brkCooldown   = flag.Duration("breaker-cooldown", 0, "cooldown before an open breaker admits a probe (0 = default 5s)")
		streamMax     = flag.Int("stream-sessions", 0, "resident live-stream session cap (0 = default 64)")
		streamPend    = flag.Int("stream-pending", 0, "append chunks racing per stream before 429 backpressure (0 = default 4)")
		streamEvents  = flag.Int("stream-events", 0, "per-stream event replay ring size (0 = default 256)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it loopback-only)")
		nodeID        = flag.String("node-id", "", "this node's id in a sharded cluster (requires -peers and -store)")
		peersFlag     = flag.String("peers", "", "full cluster membership as comma-separated id=URL pairs, including this node")
		replicas      = flag.Int("replicas", 0, "nodes holding each result record, owner included (0 = default 2)")
		probeEvery    = flag.Duration("probe-interval", 0, "peer liveness probe period (0 = default 2s)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "trackd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	var meshCfg mesh.Config
	if (*nodeID == "") != (*peersFlag == "") {
		log.Fatal("trackd: -node-id and -peers must be set together")
	}
	if *nodeID != "" {
		peers, err := mesh.ParsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("trackd: -peers: %v", err)
		}
		meshCfg = mesh.Config{
			NodeID:        *nodeID,
			Peers:         peers,
			Replicas:      *replicas,
			ProbeInterval: *probeEvery,
		}
	}

	srv, err := service.New(service.Config{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		JobTimeout:           *timeout,
		StageTimeout:         *stageTimeout,
		CacheMaxEntries:      *cacheEntries,
		CacheMaxBytes:        *cacheBytes,
		RetryAfter:           *retryAfter,
		StoreDir:             *storeDir,
		StoreMaxSegmentBytes: *storeSegment,
		StoreSyncEvery:       *storeSync,
		StoreRetries:         *storeRetries,
		JournalDisabled:      *noJournal,
		JournalSyncEvery:     *journalSync,
		TraceCacheDir:        *traceCache,
		TraceCacheMaxBytes:   *traceCacheMax,
		TraceCacheDisabled:   *noTraceCache,
		BreakerThreshold:     *brkThreshold,
		BreakerCooldown:      *brkCooldown,
		StreamMaxSessions:    *streamMax,
		StreamMaxPending:     *streamPend,
		StreamEventBuffer:    *streamEvents,
		Mesh:                 meshCfg,
	})
	if err != nil {
		log.Fatalf("trackd: %v", err)
	}
	if n := srv.Mesh(); n != nil {
		// Rebalance in the background at startup (resuming any journal-
		// scoped round a crash interrupted) and after every membership
		// change; Rebalance itself serialises concurrent rounds.
		rebalance := func() {
			go func() {
				if _, err := srv.Rebalance(context.Background()); err != nil {
					log.Printf("trackd: rebalance: %v", err)
				}
			}()
		}
		n.Start(rebalance)
		rebalance()
		log.Printf("trackd: cluster node %s of %d peers (replicas %d)", n.Self(), len(n.Statuses())+1, n.Replicas())
	}
	if *storeDir != "" {
		st := srv.Store().Stats()
		log.Printf("trackd: perfdb open at %s: %d records, %d segments, %d bytes", *storeDir, st.Records, st.Segments, st.Bytes)
		if jn := srv.Journal(); jn != nil {
			if jst := jn.Stats(); jst.Pending > 0 {
				log.Printf("trackd: journal replaying %d pending jobs (readyz answers 503 until done)", jst.Pending)
			}
		}
		if h := srv.Healthz(); h.Streams.Resumed > 0 {
			log.Printf("trackd: resumed %d live streams from their sealed windows", h.Streams.Resumed)
		}
	}

	// The profiling endpoint lives on its OWN listener, never the service
	// one: pprof exposes heap contents and must not ride along on an
	// address that might be reachable by clients.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("trackd: pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("trackd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			// http.DefaultServeMux carries the net/http/pprof handlers
			// registered by the blank import.
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("trackd: pprof serve: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("trackd: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The smoke harness and scripts parse this line to find the port.
	fmt.Printf("trackd: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("trackd: %s, shutting down", sig)
	case err := <-errc:
		log.Fatalf("trackd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("trackd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("trackd: worker shutdown: %v", err)
	}
}

// defaultWorkers sizes the pool to the machine, capped where extra
// workers only add queueing inside the pipeline's own parallel stages.
func defaultWorkers() int {
	n := runtime.NumCPU() / 2
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}
