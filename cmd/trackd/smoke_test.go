package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end gate behind `make serve-smoke`: it
// builds the real trackd binary, boots it on an ephemeral port, submits
// the synthetic study twice, and asserts the second submission is a cache
// hit returning byte-identical results, with /metrics and /healthz
// telling the same story. Finally it delivers SIGTERM and expects a clean
// exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}

	bin := filepath.Join(t.TempDir(), "trackd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building trackd: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting trackd: %v", err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "trackd: listening on ADDR" once bound.
	var addr string
	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		line := lines.Text()
		if rest, ok := strings.CutPrefix(line, "trackd: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("never saw the listening line (scan err %v)", lines.Err())
	}
	base := "http://" + addr
	// Keep draining stdout so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, b
	}
	submit := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"study":"Synthetic"}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// First submission: a miss that runs the pipeline.
	resp, body := submit()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d body %s", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decoding job view: %v", err)
	}

	var result1 []byte
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, b := get("/v1/jobs/" + view.ID + "/result")
		if code == http.StatusOK {
			result1 = b
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("result poll: status %d body %s", code, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish within 60s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !json.Valid(result1) {
		t.Fatal("result is not valid JSON")
	}

	// Second submission: must be an instant cache hit, identical bytes.
	resp, body = submit()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second submit X-Cache %q, want hit", got)
	}
	var hit struct {
		ID       string `json:"id"`
		CacheHit bool   `json:"cacheHit"`
	}
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatalf("second submit view not a cache hit: %s", body)
	}
	code, result2 := get("/v1/jobs/" + hit.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("cached result: status %d", code)
	}
	if !bytes.Equal(result1, result2) {
		t.Fatal("cached result differs from the original bytes")
	}

	// Metrics must agree: one execution, one hit, sane stage counts.
	code, metricsBody := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"trackd_jobs_accepted_total 2",
		"trackd_jobs_executed_total 1",
		"trackd_jobs_completed_total 2",
		"trackd_cache_hits_total 1",
		"trackd_cache_misses_total 1",
		"trackd_cache_entries 1",
		"trackd_stage_cluster_seconds_count 1",
		"trackd_stage_track_seconds_count 1",
		"trackd_stage_export_seconds_count 1",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, healthBody := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var h struct {
		Status string `json:"status"`
		Jobs   struct {
			Completed uint64 `json:"completed"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(healthBody, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs.Completed != 2 {
		t.Fatalf("healthz %s", healthBody)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			t.Fatalf("trackd exited uncleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("trackd did not exit after SIGTERM")
	}
}
