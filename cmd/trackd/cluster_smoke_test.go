package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perftrack/internal/oracle"
	"perftrack/internal/service"
	"perftrack/internal/trace"
)

// TestClusterSmoke boots a real 3-node trackd cluster on localhost (no
// docker, three processes, shared -peers list), submits distinct jobs
// round-robin so every node both owns and forwards work, waits for
// replication to settle, SIGKILLs one node, and then proves the
// acceptance property of cluster mode: every stored result is served,
// byte-identically, from every surviving node — whether it holds the
// record or scatter-gathers it.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trackd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building trackd: %v", err)
	}

	// Reserve three ports up front: -peers needs the full membership,
	// URLs included, before any node starts.
	ids := []string{"n1", "n2", "n3"}
	ports := make([]int, len(ids))
	var peerSpec []string
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
		peerSpec = append(peerSpec, fmt.Sprintf("%s=http://127.0.0.1:%d", ids[i], ports[i]))
	}
	peers := strings.Join(peerSpec, ",")

	start := func(i int) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-workers", "2",
			"-store", filepath.Join(tmp, ids[i]),
			"-store-sync-every", "1",
			"-node-id", ids[i],
			"-peers", peers,
			"-probe-interval", "100ms",
		)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", ids[i], err)
		}
		lines := bufio.NewScanner(stdout)
		for lines.Scan() {
			if strings.HasPrefix(lines.Text(), "trackd: listening on ") {
				break
			}
		}
		go io.Copy(io.Discard, stdout)
		return cmd
	}

	cmds := make([]*exec.Cmd, len(ids))
	for i := range ids {
		cmds[i] = start(i)
	}
	defer func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}()

	client := &http.Client{Timeout: 10 * time.Second}
	base := func(i int) string { return fmt.Sprintf("http://127.0.0.1:%d", ports[i]) }
	for i := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := client.Get(base(i) + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became ready: %v", ids[i], err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Submit distinct jobs round-robin across the nodes: consistent-hash
	// routing spreads ownership, so some land locally and some forward.
	enc := func(tr *trace.Trace) string {
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	const jobs = 6
	type stored struct {
		key  string
		body []byte
	}
	var records []stored
	for i := 0; i < jobs; i++ {
		req := service.JobRequest{
			Traces: []string{
				enc(oracle.GenTraces(uint64(500+i), fmt.Sprintf("cs%da", i), 2, 3, 2)),
				enc(oracle.GenTraces(uint64(600+i), fmt.Sprintf("cs%db", i), 2, 3, 2)),
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		node := i % len(ids)
		resp, err := client.Post(base(node)+"/v1/jobs", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("submit job %d to %s: %v", i, ids[node], err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit job %d to %s: status %d: %s", i, ids[node], resp.StatusCode, respBody)
		}
		var view struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		}
		if err := json.Unmarshal(respBody, &view); err != nil {
			t.Fatalf("job view: %v", err)
		}
		// Long-poll the terminal result on the submitting node.
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := client.Get(base(node) + "/v1/jobs/" + view.ID + "/result?wait=5s")
			if err != nil {
				t.Fatalf("poll job %d: %v", i, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				records = append(records, stored{view.Key, body})
				break
			}
			if resp.StatusCode != http.StatusAccepted || time.Now().After(deadline) {
				t.Fatalf("job %d: status %d: %s", i, resp.StatusCode, body)
			}
		}
	}

	// Let replication settle: every node must eventually list all keys
	// cluster-wide (it already can via scatter; waiting on the probe loop
	// and rebalance also gives replicas time to land before the kill).
	settled := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base(0) + "/v1/results")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Results []json.RawMessage `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err == nil && len(listing.Results) >= jobs {
			break
		}
		if time.Now().After(settled) {
			t.Fatalf("cluster listing never reached %d results", jobs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// SIGKILL one node. Replication factor 2 guarantees every record
	// still has a live holder.
	victim := 1
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[victim].Wait()
	cmds[victim] = nil

	// Every stored result must be served from every surviving node. The
	// first request after the kill may race liveness detection, so allow
	// a brief retry window per key/node pair.
	for _, rec := range records {
		for i := range ids {
			if i == victim {
				continue
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				resp, err := client.Get(base(i) + "/v1/results/" + rec.key)
				if err != nil {
					t.Fatalf("get %s from %s: %v", rec.key, ids[i], err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					if string(body) != string(rec.body) {
						t.Fatalf("key %.8s from %s: bytes differ from the acked result", rec.key, ids[i])
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("key %.8s not served by survivor %s: status %d", rec.key, ids[i], resp.StatusCode)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}

	// The survivors' health endpoints must agree the victim is down and
	// report the mesh section.
	for i := range ids {
		if i == victim {
			continue
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Get(base(i) + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var health struct {
				Mesh struct {
					Enabled bool   `json:"enabled"`
					NodeID  string `json:"nodeId"`
					Peers   []struct {
						ID    string `json:"id"`
						Alive bool   `json:"alive"`
					} `json:"peers"`
				} `json:"mesh"`
			}
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !health.Mesh.Enabled || health.Mesh.NodeID != ids[i] {
				t.Fatalf("mesh health on %s: %+v", ids[i], health.Mesh)
			}
			victimDown := false
			for _, p := range health.Mesh.Peers {
				if p.ID == ids[victim] && !p.Alive {
					victimDown = true
				}
			}
			if victimDown {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never marked %s down", ids[i], ids[victim])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}
