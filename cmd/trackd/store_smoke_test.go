package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestStoreSmoke is the end-to-end gate behind `make store-smoke`: it
// boots trackd with a perfdb store, computes one result, kills the
// daemon with SIGTERM, boots a second daemon over the same directory,
// and asserts the resubmission is served as a hit — byte-identical,
// without re-running the pipeline. This is the durability contract that
// in-memory caching alone cannot provide.
func TestStoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trackd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building trackd: %v", err)
	}
	storeDir := filepath.Join(tmp, "perfdb")

	// start boots the daemon against storeDir and returns its base URL
	// plus the running command.
	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2",
			"-store", storeDir, "-store-sync-every", "1")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting trackd: %v", err)
		}
		var addr string
		lines := bufio.NewScanner(stdout)
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "trackd: listening on "); ok {
				addr = rest
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("never saw the listening line (scan err %v)", lines.Err())
		}
		go io.Copy(io.Discard, stdout)
		return cmd, "http://" + addr
	}

	stop := func(cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		waitc := make(chan error, 1)
		go func() { waitc <- cmd.Wait() }()
		select {
		case err := <-waitc:
			if err != nil {
				t.Fatalf("trackd exited uncleanly: %v", err)
			}
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			t.Fatal("trackd did not exit after SIGTERM")
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	submit := func(base string) (int, string, bool, string) {
		t.Helper()
		resp, err := client.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"study":"Synthetic","series":"smoke","runLabel":"r1"}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view struct {
			ID       string `json:"id"`
			CacheHit bool   `json:"cacheHit"`
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("decoding job view from %s: %v", body, err)
		}
		return resp.StatusCode, view.ID, view.CacheHit, resp.Header.Get("X-Cache")
	}
	fetchResult := func(base, id string) []byte {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := client.Get(base + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatalf("GET result: %v", err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return body
			case http.StatusAccepted:
				if time.Now().After(deadline) {
					t.Fatal("job did not finish within 60s")
				}
				time.Sleep(50 * time.Millisecond)
			default:
				t.Fatalf("result poll: status %d body %s", resp.StatusCode, body)
			}
		}
	}
	metricsBody := func(base string) string {
		t.Helper()
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(b)
	}

	// First life: execute the pipeline once and persist the result.
	cmd, base := start()
	code, id, _, _ := submit(base)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	result1 := fetchResult(base, id)
	if !json.Valid(result1) {
		t.Fatal("result is not valid JSON")
	}
	if m := metricsBody(base); !strings.Contains(m, "trackd_store_records 1") {
		t.Fatalf("store did not persist the result before shutdown:\n%s", m)
	}
	stop(cmd)

	// Second life: fresh process, cold cache, same store directory. The
	// resubmission must be a hit served from disk with zero executions.
	cmd, base = start()
	defer cmd.Process.Kill()
	code, id, hit, xcache := submit(base)
	if code != http.StatusOK || !hit || xcache != "hit" {
		t.Fatalf("post-restart submit: status %d cacheHit %v X-Cache %q, want an immediate hit", code, hit, xcache)
	}
	result2 := fetchResult(base, id)
	if !bytes.Equal(result1, result2) {
		t.Fatal("result served after restart differs from the original bytes")
	}
	m := metricsBody(base)
	for _, want := range []string{
		"trackd_jobs_executed_total 0",
		"trackd_store_hits_total 1",
		"trackd_store_records 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("post-restart /metrics missing %q", want)
		}
	}

	// The stored history survives too.
	resp, err := client.Get(base + "/v1/series/smoke/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trajectories after restart: status %d body %s", resp.StatusCode, body)
	}
	stop(cmd)
}
