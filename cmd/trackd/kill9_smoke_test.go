package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perftrack/internal/oracle"
	"perftrack/internal/service"
	"perftrack/internal/trace"
)

// TestKill9Smoke is the hard-crash half of `make store-smoke`: it boots
// the real trackd binary with a perfdb store, submits a batch of
// distinct upload jobs, and SIGKILLs the daemon the moment the last 202
// lands — no drain, no fsync courtesy, exactly the crash the journal
// exists for. A fresh daemon over the same directory must replay the
// acknowledged backlog (readyz gates on it) and then serve every one of
// those submissions as an instant hit.
func TestKill9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trackd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building trackd: %v", err)
	}
	storeDir := filepath.Join(tmp, "perfdb")

	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2",
			"-store", storeDir, "-store-sync-every", "1")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting trackd: %v", err)
		}
		var addr string
		lines := bufio.NewScanner(stdout)
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "trackd: listening on "); ok {
				addr = rest
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("never saw the listening line (scan err %v)", lines.Err())
		}
		go io.Copy(io.Discard, stdout)
		return cmd, "http://" + addr
	}

	client := &http.Client{Timeout: 10 * time.Second}
	waitReady := func(base string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := client.Get(base + "/readyz")
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
				if time.Now().After(deadline) {
					t.Fatalf("readyz still %d: %s", resp.StatusCode, body)
				}
			} else if time.Now().After(deadline) {
				t.Fatalf("readyz unreachable: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Distinct upload jobs, heavy enough (8 ranks × 6 iterations) that a
	// 2-worker pool is still mid-load when the kill lands.
	const jobs = 6
	bodies := make([][]byte, jobs)
	for i := range bodies {
		enc := func(tr *trace.Trace) string {
			var sb strings.Builder
			if err := trace.Write(&sb, tr); err != nil {
				t.Fatal(err)
			}
			return sb.String()
		}
		req := service.JobRequest{
			Traces: []string{
				enc(oracle.GenTraces(uint64(900+i), fmt.Sprintf("k9-%da", i), 8, 6, 3)),
				enc(oracle.GenTraces(uint64(950+i), fmt.Sprintf("k9-%db", i), 8, 6, 3)),
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	submit := func(base string, body []byte) (int, bool) {
		t.Helper()
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view struct {
			CacheHit bool `json:"cacheHit"`
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			if err := json.Unmarshal(respBody, &view); err != nil {
				t.Fatalf("decoding job view from %s: %v", respBody, err)
			}
		}
		return resp.StatusCode, view.CacheHit
	}

	// First life: ack the whole batch, then pull the plug. Every 202 is
	// backed by an fsynced journal intent — that is the promise under test.
	cmd, base := start()
	waitReady(base)
	acked := 0
	for _, body := range bodies {
		code, _ := submit(base, body)
		switch code {
		case http.StatusAccepted, http.StatusOK:
			acked++
		case http.StatusTooManyRequests:
			// Backpressure is a documented non-ack; the batch size stays
			// within the default queue, so this is unexpected but legal.
		default:
			t.Fatalf("submit: status %d", code)
		}
	}
	if acked == 0 {
		t.Fatal("no submissions acknowledged before the kill")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Second life: replay must finish before readyz opens, after which
	// every acknowledged job resolves instantly from the store.
	cmd2, base2 := start()
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	waitReady(base2)
	for i, body := range bodies {
		code, hit := submit(base2, body)
		if code != http.StatusOK || !hit {
			t.Fatalf("job %d after kill -9 + replay: status %d cacheHit %v, want instant hit", i, code, hit)
		}
	}

	// The journal backlog is drained and the daemon reports it.
	resp, err := client.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Journal struct {
			Enabled bool `json:"enabled"`
			Pending int  `json:"pending"`
		} `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.Journal.Enabled || health.Journal.Pending != 0 {
		t.Fatalf("journal after recovery: %+v, want enabled with 0 pending", health.Journal)
	}
}
