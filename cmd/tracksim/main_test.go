package main

import (
	"path/filepath"
	"testing"

	"perftrack/internal/apps"
	"perftrack/internal/trace"
)

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"NAS BT":               "NAS_BT",
		"MareNostrum/gfortran": "MareNostrum-gfortran",
		"a:b c":                "a-b_c",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateStudy(t *testing.T) {
	st, err := apps.ByName("NAS FT")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink: two small runs.
	st.Runs = st.Runs[:2]
	for i := range st.Runs {
		st.Runs[i].Scenario.Iterations = 2
		st.Runs[i].Scenario.Ranks = 4
	}
	dir := t.TempDir()
	if err := generate(st, dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "NAS_FT", "*.prv.txt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("generated files = %v (%v)", files, err)
	}
	// The files parse back.
	for _, f := range files {
		tr, err := trace.ReadFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(tr.Bursts) == 0 {
			t.Errorf("%s: empty trace", f)
		}
	}
}

func TestRunModes(t *testing.T) {
	if err := run(true, "", false, ""); err != nil {
		t.Errorf("-list failed: %v", err)
	}
	if err := run(false, "", false, t.TempDir()); err == nil {
		t.Error("no mode selected should error")
	}
	if err := run(false, "Bogus", false, t.TempDir()); err == nil {
		t.Error("unknown study accepted")
	}
}
