// Command tracksim generates burst-level traces for the catalog's
// synthetic applications, writing one perftrack trace file per experiment.
// These files are the interchange format the analysis tool (trackctl)
// consumes, playing the role Extrae traces play for the original tool.
//
// Usage:
//
//	tracksim -list
//	tracksim -study WRF [-out DIR]
//	tracksim -all [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"perftrack/internal/apps"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list the available studies and exit")
	study := flag.String("study", "", "generate the traces of one study")
	all := flag.Bool("all", false, "generate the traces of every study")
	outDir := flag.String("out", "traces", "output directory")
	flag.Parse()

	if err := run(*list, *study, *all, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "tracksim:", err)
		os.Exit(1)
	}
}

func run(list bool, study string, all bool, outDir string) error {
	if list {
		for _, st := range apps.All() {
			fmt.Printf("%-18s %2d experiments  %s\n", st.Name, len(st.Runs), st.Description)
		}
		return nil
	}
	var studies []apps.Study
	switch {
	case all:
		studies = apps.All()
	case study != "":
		st, err := apps.ByName(study)
		if err != nil {
			return err
		}
		studies = []apps.Study{st}
	default:
		return fmt.Errorf("nothing to do: pass -list, -study NAME or -all")
	}
	for _, st := range studies {
		if err := generate(st, outDir); err != nil {
			return err
		}
	}
	return nil
}

func generate(st apps.Study, outDir string) error {
	dir := filepath.Join(outDir, sanitize(st.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	traces, err := mpisim.SimulateSeries(st.Runs)
	if err != nil {
		return err
	}
	if st.Windows > 1 {
		traces = traces[0].SplitWindows(st.Windows)
	}
	for i, t := range traces {
		name := fmt.Sprintf("%02d_%s.prv.txt", i, sanitize(t.Meta.Label))
		path := filepath.Join(dir, name)
		if err := trace.WriteFile(path, t); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, t.Summary())
	}
	return nil
}

func sanitize(s string) string {
	r := strings.NewReplacer(" ", "_", "/", "-", ":", "-")
	return r.Replace(s)
}
