package perftrack

// This file is the reproduction record: one test per table/figure of the
// paper's evaluation, asserting the *shape* of our measured results
// against what the paper reports (who wins, by roughly what factor, where
// the crossovers fall). EXPERIMENTS.md documents the same comparisons in
// prose with the measured numbers.

import (
	"math"
	"sync"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/metrics"
)

// studyCache memoises study results: the reproduction tests share them.
var studyCache sync.Map

func runCached(t testing.TB, name string) *core.Result {
	if v, ok := studyCache.Load(name); ok {
		return v.(*core.Result)
	}
	st, err := CatalogStudy(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStudy(st)
	if err != nil {
		t.Fatalf("study %s: %v", name, err)
	}
	studyCache.Store(name, res)
	return res
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4g, want %.4g (±%.3g)", what, got, want, tol)
	}
}

func trendByPhase(t *testing.T, res *core.Result, phase int, m metrics.Metric) core.RegionTrend {
	t.Helper()
	reg := res.RegionByPhase(phase)
	if reg == nil {
		t.Fatalf("no tracked region for phase %d", phase)
	}
	rt, err := res.Trend(reg.ID, m)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestTable2 reproduces the summary of experiments: input images, tracked
// regions and coverage for all ten case studies, with the paper's ~90%
// average coverage.
func TestTable2(t *testing.T) {
	wanted := []struct {
		name     string
		images   int
		regions  int
		coverage float64
	}{
		{"Gadget", 2, 8, 8.0 / 9.0},            // paper: 88%
		{"QuantumESPRESSO", 2, 6, 2.0 / 3.0},   // paper: 66%
		{"WRF", 2, 12, 1.0},                    // paper: 100%
		{"Gromacs", 3, 5, 1.0},                 // paper: 100%
		{"CGPOP", 4, 2, 2.0 / 3.0},             // paper: 66%
		{"NAS BT", 4, 6, 1.0},                  // paper: 100%
		{"HydroC", 12, 2, 1.0},                 // paper: 100%
		{"MR-Genesis", 12, 2, 1.0},             // paper: 100%
		{"NAS FT", 15, 2, 1.0},                 // paper: 100%
		{"Gromacs-evolution", 20, 4, 8.0 / 10}, // paper: 80%
	}
	var covSum float64
	for _, w := range wanted {
		w := w
		t.Run(w.name, func(t *testing.T) {
			res := runCached(t, w.name)
			if len(res.Frames) != w.images {
				t.Errorf("input images = %d, want %d", len(res.Frames), w.images)
			}
			if res.SpanningCount != w.regions {
				t.Errorf("tracked regions = %d, want %d", res.SpanningCount, w.regions)
			}
			within(t, "coverage", res.Coverage, w.coverage, 0.01)
		})
	}
	for _, w := range wanted {
		res := runCached(t, w.name)
		covSum += res.Coverage
	}
	within(t, "average coverage (paper: 90%)", covSum/float64(len(wanted)), 0.90, 0.02)
}

// TestFigure1 reproduces the WRF cluster structure: twelve regions at 128
// tasks, more objects at 256 (the splits the SPMD evaluator re-groups),
// and near-constant normalised structure after rank weighting.
func TestFigure1(t *testing.T) {
	res := runCached(t, "WRF")
	if got := res.Frames[0].NumClusters; got != 12 {
		t.Errorf("128-task frame clusters = %d, want 12", got)
	}
	if got := res.Frames[1].NumClusters; got <= 12 {
		t.Errorf("256-task frame clusters = %d, want more than 12 (bimodal splits)", got)
	}
	// Per-rank instructions halve; the rank-weighted normalised Y of
	// every stable region must coincide across frames within a few
	// percent (the paper's "relative distances are kept almost
	// constant").
	for phase := 3; phase <= 6; phase++ {
		reg := res.RegionByPhase(phase)
		if reg == nil {
			t.Fatalf("phase %d untracked", phase)
		}
		c0 := res.Frames[0].Cluster(reg.Members[0][0]).Centroid[1]
		c1 := res.Frames[1].Cluster(reg.Members[1][0]).Centroid[1]
		if math.Abs(c0-c1) > 0.02 {
			t.Errorf("phase %d normalised Y moved: %.3f -> %.3f", phase, c0, c1)
		}
	}
}

// TestFigure3 reproduces the displacement correlation matrix structure:
// most rows are univocal, while split regions distribute their mass over
// the two mode clusters (the paper's A4 -> 34%/65% pattern).
func TestFigure3(t *testing.T) {
	res := runCached(t, "WRF")
	m := res.Pairs[0].DispAB
	splitRows, univocal := 0, 0
	for i := 1; i <= m.Rows(); i++ {
		nonzero := 0
		var best float64
		for j := 1; j <= m.Cols(); j++ {
			if v := m.At(i, j); v > 0 {
				nonzero++
				if v > best {
					best = v
				}
			}
		}
		switch {
		case nonzero == 1 && best > 0.99:
			univocal++
		case nonzero >= 2:
			splitRows++
		}
	}
	if univocal < 8 {
		t.Errorf("univocal rows = %d, want most of the 12", univocal)
	}
	if splitRows < 2 {
		t.Errorf("split rows = %d, want the two bimodal regions", splitRows)
	}
}

// TestFigure4 reproduces the SPMD structure: the per-task cluster
// sequences of both WRF experiments align almost perfectly, with slightly
// more variability at 256 tasks (the rank-distributed splits).
func TestFigure4(t *testing.T) {
	res := runCached(t, "WRF")
	st, _ := CatalogStudy("WRF")
	cfg := st.Track
	score := make([]float64, 2)
	for i, f := range res.Frames {
		al := core.FrameAlignment(f, cfg)
		score[i] = al.SPMDScore()
		if score[i] < 0.90 {
			t.Errorf("frame %d SPMD score = %.3f, want SPMD-like (>0.9)", i, score[i])
		}
	}
	if score[1] > score[0]+1e-9 {
		t.Errorf("256-task run should be no more SPMD than 128: %.4f vs %.4f", score[1], score[0])
	}
}

// TestTable1 reproduces the call-stack correlations: regions 2 and 5
// share one source reference, as do 11 and 12 — the relations that are
// "not univocal because different points of code behave the same".
func TestTable1(t *testing.T) {
	res := runCached(t, "WRF")
	a, b := res.Frames[0], res.Frames[1]
	table := core.StackTable(a, b)
	sharedPairs := 0
	for _, e := range table {
		if len(e[0]) >= 2 {
			sharedPairs++
		}
	}
	if sharedPairs != 2 {
		t.Errorf("shared-stack relations in frame A = %d, want 2 (regions 2+5 and 11+12)", sharedPairs)
	}
}

// TestFigure6 reproduces the renamed output frames: tracked-region ids
// are consistent across frames, so the same code region keeps its number
// and colour along the sequence.
func TestFigure6(t *testing.T) {
	res := runCached(t, "WRF")
	for phase := 1; phase <= 12; phase++ {
		reg := res.RegionByPhase(phase)
		if reg == nil {
			t.Fatalf("phase %d untracked", phase)
		}
		ids := map[int]bool{}
		for fi := range res.Frames {
			labels := res.RegionLabels(fi)
			for bi, l := range labels {
				if l > 0 && res.Frames[fi].Trace.Bursts[bi].Phase == phase {
					ids[l] = true
				}
			}
		}
		if len(ids) != 1 {
			t.Errorf("phase %d renamed inconsistently: region ids %v", phase, ids)
		}
	}
}

// TestFigure7 reproduces the WRF trends: regions 11 and 12 lose ~20% IPC,
// regions 4, 6 and 7 gain ~5%, the rest move less than 3%; and region 1
// replicates ~5% of its total work when doubling the ranks.
func TestFigure7(t *testing.T) {
	res := runCached(t, "WRF")
	ipcDelta := func(phase int) float64 {
		return trendByPhase(t, res, phase, metrics.IPC).RelDeltaMean()
	}
	for _, phase := range []int{11, 12} {
		d := ipcDelta(phase)
		if d > -0.15 || d < -0.27 {
			t.Errorf("phase %d IPC delta = %.1f%%, want ~-20%%", phase, 100*d)
		}
	}
	for _, phase := range []int{4, 6, 7} {
		d := ipcDelta(phase)
		if d < 0.03 || d > 0.08 {
			t.Errorf("phase %d IPC delta = %.1f%%, want ~+5%%", phase, 100*d)
		}
	}
	for _, phase := range []int{1, 3, 5, 8, 10} {
		if d := math.Abs(ipcDelta(phase)); d > 0.03 {
			t.Errorf("stable phase %d moved %.1f%% in IPC", phase, 100*d)
		}
	}
	// Figure 7b: total instructions. Region 1 grows ~5%; the others stay
	// constant under strong scaling.
	totalInstr := func(phase int) (first, last float64) {
		rt := trendByPhase(t, res, phase, metrics.Instructions)
		first = rt.Points[0].Mean * float64(res.Frames[0].Ranks)
		last = rt.Points[len(rt.Points)-1].Mean * float64(res.Frames[len(res.Frames)-1].Ranks)
		return first, last
	}
	f1, l1 := totalInstr(1)
	within(t, "region 1 replication", (l1-f1)/f1, 0.05, 0.015)
	for _, phase := range []int{3, 4, 5} {
		f, l := totalInstr(phase)
		if d := math.Abs((l - f) / f); d > 0.02 {
			t.Errorf("phase %d total instructions moved %.1f%%", phase, 100*d)
		}
	}
}

// TestTable3 reproduces the CGPOP compiler/platform numbers within a few
// percent of the paper's Table 3.
func TestTable3(t *testing.T) {
	res := runCached(t, "CGPOP")
	type row struct {
		phase  int
		ipc    [4]float64 // MN/gfortran, MN/xlf, MT/gfortran, MT/ifort
		instrM [4]float64
	}
	rows := []row{
		{1, [4]float64{0.25, 0.16, 0.42, 0.30}, [4]float64{6.8, 4.3, 5.0, 3.5}},
		{2, [4]float64{0.25, 0.16, 0.50, 0.36}, [4]float64{4.5, 3.0, 3.3, 2.3}},
	}
	for _, r := range rows {
		ipc := trendByPhase(t, res, r.phase, metrics.IPC).Means()
		ins := trendByPhase(t, res, r.phase, metrics.Instructions).Means()
		dur := trendByPhase(t, res, r.phase, metrics.DurationMS).Means()
		for i := 0; i < 4; i++ {
			within(t, "IPC", ipc[i], r.ipc[i], 0.05*r.ipc[i]+0.005)
			within(t, "instructions (M)", ins[i]/1e6, r.instrM[i], 0.05*r.instrM[i])
		}
		// The headline: vendor compilers do not change the time.
		within(t, "MN duration flat", dur[1]/dur[0], 1.0, 0.02)
		within(t, "MT duration flat", dur[3]/dur[2], 1.0, 0.04)
	}
	// Scaled whole-run durations (nominal invocation counts) match the
	// paper's seconds.
	st, _ := CatalogStudy("CGPOP")
	durR1 := trendByPhase(t, res, 1, metrics.DurationMS).Means()
	scaled := durR1[0] * float64(st.PhaseNominal[1]) / 1000
	within(t, "R1 MN/gfortran duration (s)", scaled, 12.09, 0.3)
	durR2 := trendByPhase(t, res, 2, metrics.DurationMS).Means()
	scaled = durR2[0] * float64(st.PhaseNominal[2]) / 1000
	within(t, "R2 MN/gfortran duration (s)", scaled, 2.13, 0.1)
}

// TestFigure8 reproduces the CGPOP frame structure: every experiment
// shows two instruction trends, with the lighter one split into two IPC
// behaviours (three objects per frame).
func TestFigure8(t *testing.T) {
	res := runCached(t, "CGPOP")
	for fi, f := range res.Frames {
		if f.NumClusters != 3 {
			t.Errorf("frame %d clusters = %d, want 3", fi, f.NumClusters)
		}
	}
	// The grouped pair is one wide tracked region covering two clusters
	// per frame.
	reg := res.RegionByPhase(2)
	if reg == nil {
		t.Fatal("region 2 untracked")
	}
	for fi := range res.Frames {
		if len(reg.Members[fi]) != 2 {
			t.Errorf("frame %d: grouped region has %d members, want 2", fi, len(reg.Members[fi]))
		}
	}
}

// TestFigure9and10 reproduces the NAS BT problem-size study: instructions
// grow orders of magnitude W->C, one region group loses 40-65% IPC
// between W and A then stabilises, the other keeps degrading until B, and
// L2 misses rise with the IPC loss.
func TestFigure9and10(t *testing.T) {
	res := runCached(t, "NAS BT")
	// Figure 9: the same six regions in all four frames; dynamic range.
	for fi, f := range res.Frames {
		if f.NumClusters != 6 {
			t.Errorf("frame %d clusters = %d, want 6", fi, f.NumClusters)
		}
	}
	insW := trendByPhase(t, res, 1, metrics.Instructions).Means()[0]
	insC := trendByPhase(t, res, 1, metrics.Instructions).Means()[3]
	if insC/insW < 100 {
		t.Errorf("instructions grew x%.0f W->C, want two orders of magnitude", insC/insW)
	}
	// Figure 10a: sharp-then-stable group (phases 1, 2, 4, 5).
	for _, phase := range []int{1, 2, 4, 5} {
		m := trendByPhase(t, res, phase, metrics.IPC).Means()
		dropWA := (m[0] - m[1]) / m[0]
		if dropWA < 0.35 || dropWA > 0.70 {
			t.Errorf("phase %d W->A IPC drop = %.0f%%, want 40-65%%", phase, 100*dropWA)
		}
		dropAC := (m[1] - m[3]) / m[1]
		if dropAC > 0.12 {
			t.Errorf("phase %d did not stabilise after A: A->C drop = %.0f%%", phase, 100*dropAC)
		}
	}
	// The progressive group (phases 3, 6) keeps falling until B.
	for _, phase := range []int{3, 6} {
		m := trendByPhase(t, res, phase, metrics.IPC).Means()
		dropAB := (m[1] - m[2]) / m[1]
		if dropAB < 0.15 {
			t.Errorf("phase %d A->B drop = %.0f%%, want a continuing decline", phase, 100*dropAB)
		}
		dropBC := (m[2] - m[3]) / m[2]
		if dropBC > 0.12 {
			t.Errorf("phase %d B->C drop = %.0f%%, want stabilisation at B", phase, 100*dropBC)
		}
	}
	// Figure 10b: L2 misses per kilo-instruction rise monotonically.
	for _, phase := range []int{1, 3} {
		m := trendByPhase(t, res, phase, metrics.L2MissesPerKInstr).Means()
		for i := 1; i < len(m); i++ {
			if m[i] < m[i-1]*0.99 {
				t.Errorf("phase %d L2 MPKI fell at frame %d: %v", phase, i, m)
			}
		}
	}
}

// TestFigure11 reproduces the MR-Genesis node-sharing study: IPC steps
// under ~2% up to 8 tasks/node, a sharp knee afterwards, a total
// degradation near the paper's 17.5%, and cache misses growing inversely.
func TestFigure11(t *testing.T) {
	res := runCached(t, "MR-Genesis")
	for _, phase := range []int{1, 2} {
		m := trendByPhase(t, res, phase, metrics.IPC).Means()
		if len(m) != 12 {
			t.Fatalf("phase %d frames = %d", phase, len(m))
		}
		// Monotone non-increasing (small tolerance for jitter).
		for i := 1; i < 12; i++ {
			if m[i] > m[i-1]*1.005 {
				t.Errorf("phase %d IPC rose at %d tasks/node", phase, i+1)
			}
		}
		// Early steps gentle.
		for i := 1; i < 8; i++ {
			step := (m[i-1] - m[i]) / m[i-1]
			if step > 0.02 {
				t.Errorf("phase %d step %d->%d tasks = %.1f%%, want <2%%", phase, i, i+1, 100*step)
			}
		}
		// A sharp step beyond 8 tasks/node.
		maxLate := 0.0
		for i := 8; i < 12; i++ {
			if step := (m[i-1] - m[i]) / m[i-1]; step > maxLate {
				maxLate = step
			}
		}
		if maxLate < 0.04 || maxLate > 0.12 {
			t.Errorf("phase %d sharpest late step = %.1f%%, want ~8.5%%", phase, 100*maxLate)
		}
	}
	total := func(phase int) float64 {
		m := trendByPhase(t, res, phase, metrics.IPC).Means()
		return (m[0] - m[11]) / m[0]
	}
	within(t, "region 1 total IPC degradation (paper 17.5%)", total(1), 0.175, 0.05)
	// Figure 11b: L2 misses grow as the node fills.
	l2 := trendByPhase(t, res, 1, metrics.L2DMisses).Means()
	if l2[11] <= l2[0] {
		t.Errorf("L2 misses did not grow: %v -> %v", l2[0], l2[11])
	}
}

// TestFigure12 reproduces the HydroC block-size study: instructions fall
// a few percent per step up to block ~32 then flatten; IPC dips sharply
// between blocks 64 and 128 where the working set overflows the 32 KB L1
// and the L1 miss count jumps ~40%.
func TestFigure12(t *testing.T) {
	res := runCached(t, "HydroC")
	if res.SpanningCount != 2 {
		t.Fatalf("tracked regions = %d", res.SpanningCount)
	}
	const cliff = 8 // frame index of block-128 (after block-64)
	for _, reg := range res.Regions {
		if !reg.Spanning {
			continue
		}
		ipc, _ := res.Trend(reg.ID, metrics.IPC)
		m := ipc.Means()
		// Flat before the cliff.
		for i := 1; i < cliff; i++ {
			if d := math.Abs(m[i]-m[0]) / m[0]; d > 0.01 {
				t.Errorf("region %d IPC moved %.1f%% before the cliff (frame %d)", reg.ID, 100*d, i)
			}
		}
		// The sharpest step is exactly 64 -> 128.
		worst, at := 0.0, 0
		for i := 1; i < len(m); i++ {
			if d := (m[i-1] - m[i]) / m[i-1]; d > worst {
				worst, at = d, i
			}
		}
		if at != cliff {
			t.Errorf("region %d sharpest dip at frame %d (%s), want block-64 -> block-128",
				reg.ID, at, res.Frames[at].Label)
		}
		if worst < 0.04 || worst > 0.13 {
			t.Errorf("region %d dip = %.1f%%, want the 5-10%% of Fig. 12b", reg.ID, 100*worst)
		}
		// L1 misses jump ~40% at the cliff.
		l1, _ := res.Trend(reg.ID, metrics.L1DMisses)
		lm := l1.Means()
		jump := (lm[cliff] - lm[cliff-1]) / lm[cliff-1]
		if jump < 0.25 || jump > 0.55 {
			t.Errorf("region %d L1 miss jump = %.0f%%, want ~40%%", reg.ID, 100*jump)
		}
		// Instructions: early steps of 1-3%, flat beyond block 32.
		ins, _ := res.Trend(reg.ID, metrics.Instructions)
		im := ins.Means()
		firstStep := (im[0] - im[1]) / im[0]
		if firstStep < 0.01 || firstStep > 0.05 {
			t.Errorf("region %d first instruction step = %.1f%%, want 1-3%%", reg.ID, 100*firstStep)
		}
		lateMove := math.Abs(im[len(im)-1]-im[7]) / im[7]
		if lateMove > 0.01 {
			t.Errorf("region %d instructions still moving late: %.2f%%", reg.ID, 100*lateMove)
		}
	}
}

// TestPredictionExtension exercises the paper's future-work idea: fit the
// per-region trends on a prefix of the NAS FT size sweep and predict the
// held-out last experiment.
func TestPredictionExtension(t *testing.T) {
	st, err := CatalogStudy("NAS FT")
	if err != nil {
		t.Fatal(err)
	}
	full := runCached(t, "NAS FT")

	// Re-track on the first 12 frames only.
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Track(traces[:12], st.Track)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 1; phase <= 2; phase++ {
		reg := partial.RegionByPhase(phase)
		if reg == nil {
			t.Fatalf("phase %d untracked in the prefix", phase)
		}
		// Instructions follow a power law of the problem scale: the
		// log-linear model extrapolates it to the held-out size.
		pred, err := partial.Predict(reg.ID, metrics.Instructions, st.ParamValues[:12], st.ParamValues[14])
		if err != nil {
			t.Fatal(err)
		}
		actual := trendByPhase(t, full, phase, metrics.Instructions).Means()[14]
		relErr := math.Abs(pred.Power-actual) / actual
		if relErr > 0.05 {
			t.Errorf("phase %d: predicted instructions %.4g vs measured %.4g (%.0f%% off)",
				phase, pred.Power, actual, 100*relErr)
		}
		if math.Abs(pred.PowerModel.B-1) > 0.03 {
			t.Errorf("phase %d power exponent = %.3f, want ~1 (work scales with size)", phase, pred.PowerModel.B)
		}
		// IPC saturates, so the late linear trend predicts the held-out
		// point well; fit only the saturated tail.
		tail := partial
		ipcPred, err := tail.Predict(reg.ID, metrics.IPC, st.ParamValues[:12], st.ParamValues[14])
		if err != nil {
			t.Fatal(err)
		}
		actualIPC := trendByPhase(t, full, phase, metrics.IPC).Means()[14]
		// The linear model over the whole (nonlinear) range is documented
		// to be a rough envelope: accept it only as a lower bound.
		if ipcPred.Linear > actualIPC*1.2 {
			t.Errorf("phase %d: IPC prediction %.3f exceeds measured %.3f badly", phase, ipcPred.Linear, actualIPC)
		}
	}
}

// TestGroundTruthValidation scores every catalog study against the
// simulator's phase annotations: the tracked regions must recover the
// true phase partition almost perfectly (weighted purity and adjusted
// Rand index near 1). This is the end-to-end accuracy claim behind every
// other reproduction test.
func TestGroundTruthValidation(t *testing.T) {
	for _, st := range CatalogStudies() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			res := runCached(t, st.Name)
			score := res.Validate()
			if score.Annotated == 0 {
				t.Fatal("no annotated bursts")
			}
			if score.Purity < 0.97 {
				t.Errorf("purity = %.3f", score.Purity)
			}
			if score.ARI < 0.95 {
				t.Errorf("adjusted Rand index = %.3f", score.ARI)
			}
		})
	}
}

// TestAblationEvaluators demonstrates the evaluators' contribution: with
// the call-stack evaluator disabled, the NAS BT long-jump study can no
// longer be tracked univocally.
func TestAblationEvaluators(t *testing.T) {
	st, err := CatalogStudy("NAS BT")
	if err != nil {
		t.Fatal(err)
	}
	full := runCached(t, "NAS BT")
	if full.Coverage < 0.99 {
		t.Fatalf("full tracker coverage = %v", full.Coverage)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := st.Track
	cfg.DisableCallstack = true
	ablated, err := Track(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ablated.SpanningCount >= full.SpanningCount && ablated.Coverage >= full.Coverage {
		// Without the veto+rescue the displacement mismatches merge
		// regions; either fewer spanning regions survive or they collapse
		// into wide groups.
		widest := 0
		for _, reg := range ablated.Regions {
			for _, ms := range reg.Members {
				if len(ms) > widest {
					widest = len(ms)
				}
			}
		}
		if widest <= 1 {
			t.Errorf("disabling the call-stack evaluator changed nothing: %d regions at %.0f%%",
				ablated.SpanningCount, 100*ablated.Coverage)
		}
	}
}
