package perftrack

// The paper notes the whole process "can be likewise applied to any
// arbitrary number of dimensions". These tests run the full pipeline on a
// three-metric performance space (IPC x Instructions x L2 misses per
// kilo-instruction) to exercise the d-dimensional code paths of the grid
// index, DBSCAN, normalisation and the displacement evaluator.

import (
	"testing"

	"perftrack/internal/metrics"
)

func TestTrackThreeDimensions(t *testing.T) {
	st, err := CatalogStudy("NAS BT")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := st.Track
	cfg.Metrics = []Metric{metrics.IPC, metrics.Instructions, metrics.L2MissesPerKInstr}
	res, err := Track(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The extra dimension must not break the tracking: the six regions
	// stay fully resolved.
	if res.SpanningCount != 6 {
		t.Errorf("3D tracking regions = %d, want 6", res.SpanningCount)
	}
	if res.Coverage < 0.99 {
		t.Errorf("3D coverage = %.2f", res.Coverage)
	}
	// Norm coordinates carry three dimensions in [0,1].
	for _, f := range res.Frames {
		for _, q := range f.Norm {
			if len(q) != 3 {
				t.Fatalf("normalised dims = %d", len(q))
			}
			for d, v := range q {
				if v < -1e-9 || v > 1+1e-9 {
					t.Fatalf("dim %d out of range: %v", d, v)
				}
			}
		}
	}
	// Region identity matches the 2D result.
	flat, err := Track(traces, st.Track)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 1; phase <= 6; phase++ {
		if res.RegionByPhase(phase) == nil {
			t.Errorf("3D tracking lost phase %d", phase)
		}
		if flat.RegionByPhase(phase) == nil {
			t.Errorf("2D tracking lost phase %d", phase)
		}
	}
}

func TestTrackSingleDimension(t *testing.T) {
	// Degenerate but legal: a one-dimensional space (instructions only).
	st, err := CatalogStudy("NAS FT")
	if err != nil {
		t.Fatal(err)
	}
	st.Runs = st.Runs[:3]
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := st.Track
	cfg.Metrics = []Metric{metrics.Instructions}
	res, err := Track(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 {
		t.Errorf("1D tracking regions = %d, want 2 (the phases differ in instructions)", res.SpanningCount)
	}
}
