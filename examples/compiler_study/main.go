// Compiler/platform study: reproduce the paper's CGPOP analysis (Section
// 4.1, Table 3). Four experiments — two machines, each with a generic and
// a vendor compiler — are tracked, and the per-region numbers show the
// paper's headline observation: the specialised compilers cut the
// instruction count by ~30-36% but lose IPC in the same proportion, so
// the execution time does not move.
//
// Run with:
//
//	go run ./examples/compiler_study
package main

import (
	"fmt"
	"log"

	"perftrack"
)

func main() {
	study, err := perftrack.CatalogStudy("CGPOP")
	if err != nil {
		log.Fatal(err)
	}
	res, err := perftrack.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}

	labels := make([]string, len(res.Frames))
	for i, f := range res.Frames {
		labels[i] = f.Label
	}
	fmt.Printf("CGPOP across %v\n", labels)
	fmt.Printf("tracked %d regions (optimal %d, coverage %.0f%%)\n\n",
		res.SpanningCount, res.OptimalK, 100*res.Coverage)

	for _, tr := range res.Regions {
		if !tr.Spanning {
			continue
		}
		ipc, _ := res.Trend(tr.ID, perftrack.IPC)
		ins, _ := res.Trend(tr.ID, perftrack.Instructions)
		dur, _ := res.Trend(tr.ID, perftrack.DurationMS)
		fmt.Printf("Region %d:\n", tr.ID)
		fmt.Printf("  %-14s", "IPC")
		for _, p := range ipc.Points {
			fmt.Printf("  %8.2f", p.Mean)
		}
		fmt.Printf("\n  %-14s", "Instructions")
		for _, p := range ins.Points {
			fmt.Printf("  %7.1fM", p.Mean/1e6)
		}
		fmt.Printf("\n  %-14s", "Burst (ms)")
		for _, p := range dur.Points {
			fmt.Printf("  %8.2f", p.Mean)
		}
		fmt.Println()

		// The punchline: compare the vendor compiler against gfortran on
		// the same machine.
		gf, xl := ins.Points[0].Mean, ins.Points[1].Mean
		fmt.Printf("  xlf vs gfortran on MareNostrum: %+.0f%% instructions, %+.0f%% IPC, %+.1f%% time\n",
			100*(xl-gf)/gf,
			100*(ipc.Points[1].Mean-ipc.Points[0].Mean)/ipc.Points[0].Mean,
			100*(dur.Points[1].Mean-dur.Points[0].Mean)/dur.Points[0].Mean)
	}
}
