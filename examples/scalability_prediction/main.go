// Scalability prediction: the extension the paper's conclusions propose —
// "build predictive models able to foresee the performance of experiments
// beyond the sample space". The WRF model is tracked across 32..256 tasks,
// per-region trends are fitted, and the 512-task experiment is predicted
// before being checked against an actual (simulated) run.
//
// Run with:
//
//	go run ./examples/scalability_prediction
package main

import (
	"fmt"
	"log"
	"math"

	"perftrack"
	"perftrack/internal/apps"
)

func main() {
	study := apps.WRFScalability()

	// Hold out the largest run.
	traces, err := perftrack.SimulateStudy(study)
	if err != nil {
		log.Fatal(err)
	}
	n := len(traces)
	fitRes, err := perftrack.Track(traces[:n-1], study.Track)
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := perftrack.Track(traces, study.Track)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fitted on %d experiments (%v tasks), predicting %v tasks\n\n",
		n-1, study.ParamValues[:n-1], study.ParamValues[n-1])

	fmt.Printf("%-8s %14s %14s %8s\n", "region", "predicted", "measured", "error")
	count := 0
	for _, tr := range fitRes.Regions {
		if !tr.Spanning || count >= 6 {
			continue
		}
		count++
		// Instructions per rank follow a power law of the rank count.
		pred, err := fitRes.Predict(tr.ID, perftrack.Instructions,
			study.ParamValues[:n-1], study.ParamValues[n-1])
		if err != nil {
			log.Fatal(err)
		}
		// Find the corresponding region in the full run by its phase.
		phase := fitRes.RegionMajorityPhase(tr.ID)
		fullReg := fullRes.RegionByPhase(phase)
		if fullReg == nil {
			continue
		}
		rt, _ := fullRes.Trend(fullReg.ID, perftrack.Instructions)
		actual := rt.Means()[n-1]
		errPct := 100 * math.Abs(pred.Power-actual) / actual
		fmt.Printf("%-8d %13.4gM %13.4gM %7.1f%%\n",
			tr.ID, pred.Power/1e6, actual/1e6, errPct)
	}
	fmt.Println("\n(power-law fit of instructions per rank; the model also exposes")
	fmt.Println(" linear fits, R² and per-metric trends — see Result.Predict)")
}
