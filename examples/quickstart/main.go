// Quickstart: define a tiny synthetic SPMD application, run it under two
// execution scenarios, and track how its computing regions move through
// the performance space.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"perftrack"
	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

func main() {
	// An application with two computing phases: a solver that dominates
	// the time and a cheaper halo pack/unpack region.
	arch := machine.MinoTauro()
	app := perftrack.AppSpec{
		Name: "demo",
		Phases: []mpisim.PhaseSpec{
			{
				Name:      "solver",
				Stack:     trace.CallstackRef{Function: "solve", File: "solver.c", Line: 42},
				Instr:     func(s mpisim.Scenario) float64 { return 2e9 / float64(s.Ranks) },
				IPCFactor: 1.4 / arch.BaseIPC,
				MemFrac:   0.02,
			},
			{
				Name:      "halo",
				Stack:     trace.CallstackRef{Function: "halo", File: "comm.c", Line: 7},
				Instr:     func(s mpisim.Scenario) float64 { return 4e8 / float64(s.Ranks) },
				IPCFactor: 0.8 / arch.BaseIPC,
				MemFrac:   0.02,
			},
		},
	}

	// Two execution scenarios: the same problem on 32 and 64 ranks.
	var traces []*perftrack.Trace
	for _, ranks := range []int{32, 64} {
		t, err := perftrack.Simulate(app, perftrack.Scenario{
			Label:      fmt.Sprintf("%d-ranks", ranks),
			Ranks:      ranks,
			Arch:       arch,
			Compiler:   machine.GFortran(),
			Iterations: 10,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, t)
		fmt.Println(t.Summary())
	}

	// Cluster each trace into a frame and track the regions across them.
	res, err := perftrack.Track(traces, perftrack.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntracked %d regions across %d frames (coverage %.0f%%)\n",
		res.SpanningCount, len(res.Frames), 100*res.Coverage)
	for _, tr := range res.Regions {
		ipc, _ := res.Trend(tr.ID, perftrack.IPC)
		ins, _ := res.Trend(tr.ID, perftrack.Instructions)
		fmt.Printf("region %d: IPC per frame %v, instructions/rank per frame %v\n",
			tr.ID, fmt2(ipc.Means()), fmt2(ins.Means()))
	}
}

// fmt2 rounds a series for terse printing.
func fmt2(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		if x >= 1e6 {
			out[i] = fmt.Sprintf("%.1fM", x/1e6)
		} else {
			out[i] = fmt.Sprintf("%.3f", x)
		}
	}
	return out
}
