// Scaling study: reproduce the paper's WRF walkthrough (Sections 2-3).
// The application runs with 128 and 256 tasks; tracking identifies the
// twelve main computing regions, re-groups the clusters that split at 256
// tasks, and reports which regions gain or lose IPC when scaling out —
// the paper's Figure 7.
//
// Run with:
//
//	go run ./examples/scaling_study
package main

import (
	"fmt"
	"log"
	"math"

	"perftrack"
)

func main() {
	study, err := perftrack.CatalogStudy("WRF")
	if err != nil {
		log.Fatal(err)
	}
	res, err := perftrack.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("WRF strong scaling: %d frames, %d tracked regions, coverage %.0f%%\n\n",
		len(res.Frames), res.SpanningCount, 100*res.Coverage)
	for fi, f := range res.Frames {
		fmt.Printf("frame %d (%s): %d bursts in %d clusters\n", fi, f.Label, len(f.Labels), f.NumClusters)
	}

	// The paper's Figure 7a: IPC trends of regions varying more than 3%.
	fmt.Println("\nIPC trends (regions varying > 3%):")
	for _, rt := range res.TopTrends(perftrack.IPC, 0.03) {
		m := rt.Means()
		fmt.Printf("  region %-3d %.3f -> %.3f  (%+.1f%%)\n",
			rt.RegionID, m[0], m[len(m)-1], 100*rt.RelDeltaMean())
	}

	// The paper's Figure 7b: total instructions per region. Under perfect
	// strong scaling the total stays constant; growth means replicated
	// work.
	fmt.Println("\nTotal instructions (x ranks), top regions:")
	count := 0
	for _, tr := range res.Regions {
		if !tr.Spanning || count >= 5 {
			continue
		}
		count++
		rt, _ := res.Trend(tr.ID, perftrack.Instructions)
		first := rt.Points[0].Mean * float64(res.Frames[0].Ranks)
		last := rt.Points[len(rt.Points)-1].Mean * float64(res.Frames[len(res.Frames)-1].Ranks)
		note := "constant (perfect scaling)"
		if d := (last - first) / first; math.Abs(d) > 0.02 {
			note = fmt.Sprintf("%+.1f%% (replicated work)", 100*d)
		}
		fmt.Printf("  region %-3d total %.3g -> %.3g  %s\n", tr.ID, first, last, note)
	}
}
