// Evolution study: analyse the behaviour of a single long run over time —
// the paper's "evolution along time intervals within the same experiment"
// mode, used by the 20-image Gromacs row of Table 2. The run's trace is
// split into 20 consecutive windows, each clustered into its own frame,
// and tracking follows the regions through the windows to expose the
// slowly building load imbalance.
//
// Run with:
//
//	go run ./examples/evolution_study
package main

import (
	"fmt"
	"log"

	"perftrack"
)

func main() {
	study, err := perftrack.CatalogStudy("Gromacs-evolution")
	if err != nil {
		log.Fatal(err)
	}
	// SimulateStudy returns the window traces; Track correlates them.
	traces, err := perftrack.SimulateStudy(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one run of %s split into %d time windows\n", traces[0].Meta.App, len(traces))

	res, err := perftrack.Track(traces, study.Track)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracked %d regions (optimal %d, coverage %.0f%%)\n\n",
		res.SpanningCount, res.OptimalK, 100*res.Coverage)

	// Report the regions whose behaviour drifts along the run.
	drifting := res.TopTrends(perftrack.IPC, 0.02)
	if len(drifting) == 0 {
		fmt.Println("no region drifts more than 2% — behaviour is stationary")
		return
	}
	for _, rt := range drifting {
		m := rt.Means()
		fmt.Printf("region %d drifts: IPC %.3f (w1) -> %.3f (w%d), %+.1f%%\n",
			rt.RegionID, m[0], m[len(m)-1], len(m), 100*rt.RelDeltaMean())
	}
	fmt.Println("\nstationary regions:")
	for _, tr := range res.Regions {
		if !tr.Spanning {
			continue
		}
		rt, _ := res.Trend(tr.ID, perftrack.IPC)
		if rt.MaxVariation() < 0.02 {
			fmt.Printf("  region %d (max variation %.1f%%)\n", tr.ID, 100*rt.MaxVariation())
		}
	}
}
