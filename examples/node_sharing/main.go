// Node-sharing study: reproduce the paper's MR-Genesis analysis (Section
// 4.3, Figure 11). Twelve experiments pack the same 12 processes onto 1
// to 12 cores per node; tracking shows IPC degrading slowly until ~8
// tasks per node, then falling off as the node's memory bandwidth
// saturates, with cache misses growing inversely.
//
// Run with:
//
//	go run ./examples/node_sharing
package main

import (
	"fmt"
	"log"
	"strings"

	"perftrack"
)

func main() {
	study, err := perftrack.CatalogStudy("MR-Genesis")
	if err != nil {
		log.Fatal(err)
	}
	res, err := perftrack.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MR-Genesis: 12 processes on 1..12 cores per node, %d tracked regions\n\n",
		res.SpanningCount)

	for _, tr := range res.Regions {
		if !tr.Spanning {
			continue
		}
		ipc, _ := res.Trend(tr.ID, perftrack.IPC)
		means := ipc.Means()
		fmt.Printf("Region %d IPC by tasks/node:\n  ", tr.ID)
		for i, v := range means {
			fmt.Printf("%d:%.3f ", i+1, v)
		}
		total := (means[0] - means[len(means)-1]) / means[0]
		fmt.Printf("\n  total degradation %.1f%%\n", 100*total)

		// Per-step deltas expose the contention knee.
		fmt.Print("  step drops: ")
		for i := 1; i < len(means); i++ {
			d := 100 * (means[i-1] - means[i]) / means[i-1]
			marker := ""
			if d > 3 {
				marker = "*"
			}
			fmt.Printf("%.1f%%%s ", d, marker)
		}
		fmt.Println("  (* = past the bandwidth knee)")

		// A terse ASCII sparkline of the IPC curve.
		fmt.Printf("  %s\n\n", spark(means))
	}
	fmt.Println("Correlated metrics for region 1 (value as % of its maximum):")
	show := []perftrack.Metric{perftrack.IPC, perftrack.L2DMisses, perftrack.TLBMisses}
	for _, m := range show {
		rt, err := res.Trend(1, m)
		if err != nil {
			continue
		}
		means := rt.Means()
		maxV := 0.0
		for _, v := range means {
			if v > maxV {
				maxV = v
			}
		}
		fmt.Printf("  %-10s", m.Name)
		for _, v := range means {
			fmt.Printf(" %3.0f", 100*v/maxV)
		}
		fmt.Println()
	}
}

// spark renders a series with block glyphs.
func spark(xs []float64) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var sb strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}
