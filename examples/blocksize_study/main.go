// Block-size study: reproduce the paper's HydroC analysis (Section 4.4,
// Figure 12) and exercise the prediction extension (the paper's future
// work). Twelve experiments sweep the 2D block size from 4 to 1024; the
// tracker follows the kernel's two behaviours and locates the block size
// where the working set overflows the L1 cache.
//
// Run with:
//
//	go run ./examples/blocksize_study
package main

import (
	"fmt"
	"log"

	"perftrack"
)

func main() {
	study, err := perftrack.CatalogStudy("HydroC")
	if err != nil {
		log.Fatal(err)
	}
	res, err := perftrack.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HydroC block-size sweep: %d frames, %d tracked regions\n\n",
		len(res.Frames), res.SpanningCount)

	// Find the sharpest IPC step for each region: that is the cache
	// cliff.
	for _, tr := range res.Regions {
		if !tr.Spanning {
			continue
		}
		ipc, _ := res.Trend(tr.ID, perftrack.IPC)
		l1, _ := res.Trend(tr.ID, perftrack.L1DMisses)
		means := ipc.Means()
		worst, at := 0.0, 0
		for i := 1; i < len(means); i++ {
			if d := (means[i-1] - means[i]) / means[i-1]; d > worst {
				worst, at = d, i
			}
		}
		l1m := l1.Means()
		fmt.Printf("Region %d: sharpest IPC drop %.1f%% at %s -> %s (L1 misses %+.0f%%)\n",
			tr.ID, 100*worst, res.Frames[at-1].Label, res.Frames[at].Label,
			100*(l1m[at]-l1m[at-1])/l1m[at-1])
	}

	// Prediction extension: fit the pre-cliff instruction trend against
	// 1/blockSize and extrapolate to an unseen block size.
	xs := make([]float64, len(res.Frames))
	for i, v := range study.ParamValues {
		xs[i] = 1 / v
	}
	region := res.Regions[0]
	pred, err := res.Predict(region.ID, perftrack.Instructions, xs, 1.0/2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPrediction: region %d instructions at block 2048 ≈ %.3gM "+
		"(linear fit over 1/blockSize, R²=%.3f)\n",
		region.ID, pred.Linear/1e6, pred.Model.R2)
}
