package perftrack

import (
	"testing"
)

// TestStudiesSmoke runs every catalog study end to end and logs the frame
// structure and tracking outcome. It asserts only basic sanity here; the
// paper-shape assertions live in repro_test.go.
func TestStudiesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog run")
	}
	for _, st := range CatalogStudies() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunStudy(st)
			if err != nil {
				t.Fatalf("RunStudy: %v", err)
			}
			for _, f := range res.Frames {
				sizes := make([]int, 0, f.NumClusters)
				for _, ci := range f.Clusters[1:] {
					sizes = append(sizes, ci.Size)
				}
				t.Logf("frame %d (%s): %d bursts, %d clusters %v", f.Index, f.Label, len(f.Labels), f.NumClusters, sizes)
			}
			t.Logf("regions=%d spanning=%d optimalK=%d coverage=%.1f%% (expected regions=%d coverage=%.1f%%)",
				len(res.Regions), res.SpanningCount, res.OptimalK, 100*res.Coverage,
				st.ExpectedRegions, 100*st.ExpectedCoverage)
			if res.SpanningCount == 0 {
				t.Errorf("no spanning regions tracked")
			}
		})
	}
}
