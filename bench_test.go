package perftrack

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the artefact — the rows
// or series the paper reports are printed once via b.Logf (visible with
// `go test -bench . -v`) — and measures the cost of the analysis stage
// that produces it (simulation happens outside the timed region, as the
// paper's tool also consumes pre-captured traces). Custom metrics report
// the scientific outcome: coverage, tracked regions, and the headline
// deltas of each study.

import (
	"fmt"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/metrics"
)

// prepared bundles the untimed part of a study: its simulated traces.
type prepared struct {
	study  Study
	traces []*Trace
}

func prepare(b *testing.B, name string) prepared {
	b.Helper()
	st, err := CatalogStudy(name)
	if err != nil {
		b.Fatal(err)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		b.Fatal(err)
	}
	return prepared{study: st, traces: traces}
}

// trackOnce runs the timed pipeline once.
func (p prepared) trackOnce(b *testing.B) *Result {
	res, err := Track(p.traces, p.study.Track)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchTrack(b *testing.B, name string, report func(b *testing.B, res *Result)) {
	p := prepare(b, name)
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = p.trackOnce(b)
	}
	b.StopTimer()
	b.ReportMetric(res.Coverage, "coverage")
	b.ReportMetric(float64(res.SpanningCount), "regions")
	if report != nil {
		report(b, res)
	}
}

func deltaByPhase(b *testing.B, res *Result, phase int, m Metric) float64 {
	reg := res.RegionByPhase(phase)
	if reg == nil {
		b.Fatalf("phase %d untracked", phase)
	}
	rt, err := res.Trend(reg.ID, m)
	if err != nil {
		b.Fatal(err)
	}
	return rt.RelDeltaMean()
}

// BenchmarkFigure1 regenerates the WRF cluster structure (frame building
// and clustering only — the "input images").
func BenchmarkFigure1(b *testing.B) {
	p := prepare(b, "WRF")
	var frames []*Frame
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		frames, err = BuildFrames(p.traces, p.study.Track)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(frames[0].NumClusters), "clusters128")
	b.ReportMetric(float64(frames[1].NumClusters), "clusters256")
	b.Logf("WRF frames: %d clusters at 128 tasks, %d at 256", frames[0].NumClusters, frames[1].NumClusters)
}

// BenchmarkFigure3 regenerates the displacement correlation matrix.
func BenchmarkFigure3(b *testing.B) {
	p := prepare(b, "WRF")
	frames, err := BuildFrames(p.traces, p.study.Track)
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.study.Track
	var m *core.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = core.Displacement(frames[0], frames[1], cfg)
	}
	b.StopTimer()
	b.Logf("displacement matrix:\n%s", m)
}

// BenchmarkFigure4 regenerates the SPMD alignment of the WRF frames.
func BenchmarkFigure4(b *testing.B) {
	p := prepare(b, "WRF")
	frames, err := BuildFrames(p.traces, p.study.Track)
	if err != nil {
		b.Fatal(err)
	}
	var score float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al := core.FrameAlignment(frames[0], p.study.Track)
		score = al.SPMDScore()
	}
	b.StopTimer()
	b.ReportMetric(score, "spmdScore")
}

// BenchmarkTable1 regenerates the call-stack correlations.
func BenchmarkTable1(b *testing.B) {
	p := prepare(b, "WRF")
	frames, err := BuildFrames(p.traces, p.study.Track)
	if err != nil {
		b.Fatal(err)
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := core.StackTable(frames[0], frames[1])
		n = len(table)
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "stackRefs")
}

// BenchmarkFigure5and6 regenerates the full WRF tracking (sequence
// refinement and renamed output frames).
func BenchmarkFigure5and6(b *testing.B) {
	benchTrack(b, "WRF", func(b *testing.B, res *Result) {
		b.Logf("WRF: %d tracked regions, coverage %.0f%%", res.SpanningCount, 100*res.Coverage)
	})
}

// BenchmarkFigure7 regenerates the WRF trend report.
func BenchmarkFigure7(b *testing.B) {
	benchTrack(b, "WRF", func(b *testing.B, res *Result) {
		d11 := deltaByPhase(b, res, 11, IPC)
		d4 := deltaByPhase(b, res, 4, IPC)
		b.ReportMetric(100*d11, "ipcDelta11_pct")
		b.ReportMetric(100*d4, "ipcDelta4_pct")
		b.Logf("Fig 7a: region(phase 11) IPC %+.1f%% (paper ~-20%%), region(phase 4) %+.1f%% (paper ~+5%%)",
			100*d11, 100*d4)
	})
}

// BenchmarkTable2 regenerates the whole summary of experiments.
func BenchmarkTable2(b *testing.B) {
	names := []string{
		"Gadget", "QuantumESPRESSO", "WRF", "Gromacs", "CGPOP",
		"NAS BT", "HydroC", "MR-Genesis", "NAS FT", "Gromacs-evolution",
	}
	ps := make([]prepared, len(names))
	for i, n := range names {
		ps[i] = prepare(b, n)
	}
	var covSum float64
	var rows []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covSum = 0
		rows = rows[:0]
		for _, p := range ps {
			res := p.trackOnce(b)
			covSum += res.Coverage
			rows = append(rows, fmt.Sprintf("%-18s images=%2d regions=%2d coverage=%3.0f%%",
				p.study.Name, len(res.Frames), res.SpanningCount, 100*res.Coverage))
		}
	}
	b.StopTimer()
	b.ReportMetric(covSum/float64(len(ps)), "avgCoverage")
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkTable3 regenerates the CGPOP performance table.
func BenchmarkTable3(b *testing.B) {
	benchTrack(b, "CGPOP", func(b *testing.B, res *Result) {
		for phase := 1; phase <= 2; phase++ {
			reg := res.RegionByPhase(phase)
			ipc, _ := res.Trend(reg.ID, IPC)
			ins, _ := res.Trend(reg.ID, Instructions)
			b.Logf("Region %d: IPC %v instructions %v", phase, ipc.Means(), ins.Means())
		}
		ipc1, _ := res.Trend(res.RegionByPhase(1).ID, IPC)
		b.ReportMetric(ipc1.Means()[0], "ipcMNgfortran")
		b.ReportMetric(ipc1.Means()[1], "ipcMNxlf")
	})
}

// BenchmarkFigure8 regenerates the CGPOP input frames.
func BenchmarkFigure8(b *testing.B) {
	p := prepare(b, "CGPOP")
	var frames []*Frame
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		frames, err = BuildFrames(p.traces, p.study.Track)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(frames)), "frames")
}

// BenchmarkFigure9and10 regenerates the NAS BT study.
func BenchmarkFigure9and10(b *testing.B) {
	benchTrack(b, "NAS BT", func(b *testing.B, res *Result) {
		reg := res.RegionByPhase(1)
		ipc, _ := res.Trend(reg.ID, IPC)
		m := ipc.Means()
		drop := 100 * (m[0] - m[1]) / m[0]
		b.ReportMetric(drop, "dropWA_pct")
		b.Logf("Fig 10a: region(phase 1) IPC %v — W->A drop %.0f%% (paper: 40-65%%)", m, drop)
	})
}

// BenchmarkFigure11 regenerates the MR-Genesis node-sharing study.
func BenchmarkFigure11(b *testing.B) {
	benchTrack(b, "MR-Genesis", func(b *testing.B, res *Result) {
		reg := res.RegionByPhase(1)
		ipc, _ := res.Trend(reg.ID, IPC)
		m := ipc.Means()
		total := 100 * (m[0] - m[len(m)-1]) / m[0]
		b.ReportMetric(total, "totalDegradation_pct")
		b.Logf("Fig 11a: IPC 1..12 tasks/node %v — total %.1f%% (paper: 17.5%%)", m, total)
	})
}

// BenchmarkFigure12 regenerates the HydroC block-size study.
func BenchmarkFigure12(b *testing.B) {
	benchTrack(b, "HydroC", func(b *testing.B, res *Result) {
		reg := res.Regions[0]
		ipc, _ := res.Trend(reg.ID, IPC)
		l1, _ := res.Trend(reg.ID, metrics.L1DMisses)
		m, lm := ipc.Means(), l1.Means()
		dip := 100 * (m[7] - m[8]) / m[7]
		jump := 100 * (lm[8] - lm[7]) / lm[7]
		b.ReportMetric(dip, "ipcDip_pct")
		b.ReportMetric(jump, "l1Jump_pct")
		b.Logf("Fig 12: IPC dip at block 64->128 %.1f%%, L1 miss jump %.0f%% (paper: ~40%%)", dip, jump)
	})
}

// BenchmarkAblation measures the coverage contribution of each evaluator
// on the NAS BT long-jump study (the design-choice ablation DESIGN.md
// calls out).
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"Full", func(*Config) {}},
		{"NoCallstack", func(c *Config) { c.DisableCallstack = true }},
		{"NoSPMD", func(c *Config) { c.DisableSPMD = true }},
		{"NoSequence", func(c *Config) { c.DisableSequence = true }},
		{"DisplacementOnly", func(c *Config) {
			c.DisableCallstack = true
			c.DisableSPMD = true
			c.DisableSequence = true
		}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			p := prepare(b, "NAS BT")
			cfg := p.study.Track
			tc.mutate(&cfg)
			var res *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Track(p.traces, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(res.Coverage, "coverage")
			b.ReportMetric(float64(res.SpanningCount), "regions")
		})
	}
}

// BenchmarkClusterer compares the density-based clusterer against the
// partitional baseline on the WRF frames — the design choice the paper's
// reference tooling (González et al.) makes in favour of DBSCAN.
func BenchmarkClusterer(b *testing.B) {
	for _, algo := range []string{"dbscan", "kmeans"} {
		algo := algo
		b.Run(algo, func(b *testing.B) {
			p := prepare(b, "WRF")
			cfg := p.study.Track
			cfg.Cluster.Algorithm = algo
			cfg.Cluster.MaxClusters = 16
			var res *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Track(p.traces, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(res.Coverage, "coverage")
			b.ReportMetric(float64(res.SpanningCount), "regions")
			b.ReportMetric(float64(res.Frames[0].NumClusters), "clusters128")
		})
	}
}

// BenchmarkPipelineScaling measures how the tracking cost scales with the
// number of bursts per frame (the tool-performance dimension the paper
// leaves implicit).
func BenchmarkPipelineScaling(b *testing.B) {
	for _, iters := range []int{4, 8, 16} {
		iters := iters
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			st, err := CatalogStudy("CGPOP")
			if err != nil {
				b.Fatal(err)
			}
			for i := range st.Runs {
				st.Runs[i].Scenario.Iterations = iters
			}
			traces, err := SimulateStudy(st)
			if err != nil {
				b.Fatal(err)
			}
			bursts := 0
			for _, tr := range traces {
				bursts += len(tr.Bursts)
			}
			b.ReportMetric(float64(bursts), "bursts")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Track(traces, st.Track); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
