package perftrack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

func demoApp() AppSpec {
	arch := machine.MinoTauro()
	return AppSpec{
		Name: "facade-demo",
		Phases: []mpisim.PhaseSpec{
			{
				Name:      "solver",
				Stack:     trace.CallstackRef{Function: "solve", File: "s.c", Line: 1},
				Instr:     func(s mpisim.Scenario) float64 { return 1e9 / float64(s.Ranks) },
				IPCFactor: 1.4 / arch.BaseIPC,
				MemFrac:   0.02,
			},
			{
				Name:      "halo",
				Stack:     trace.CallstackRef{Function: "halo", File: "h.c", Line: 2},
				Instr:     func(s mpisim.Scenario) float64 { return 2e8 / float64(s.Ranks) },
				IPCFactor: 0.8 / arch.BaseIPC,
				MemFrac:   0.02,
			},
		},
	}
}

func demoTraces(t *testing.T) []*Trace {
	t.Helper()
	var out []*Trace
	for _, ranks := range []int{8, 16} {
		tr, err := Simulate(demoApp(), Scenario{
			Label:      fmt.Sprintf("%d-ranks", ranks),
			Ranks:      ranks,
			Arch:       machine.MinoTauro(),
			Compiler:   machine.GFortran(),
			Iterations: 6,
			Seed:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func TestFacadeTrack(t *testing.T) {
	res, err := Track(demoTraces(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpanningCount != 2 || res.Coverage != 1 {
		t.Errorf("facade tracking: %d regions at %.0f%%", res.SpanningCount, 100*res.Coverage)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if got := len(CatalogStudies()); got != 10 {
		t.Errorf("catalog = %d studies", got)
	}
	if _, err := CatalogStudy("WRF"); err != nil {
		t.Errorf("CatalogStudy(WRF): %v", err)
	}
	if _, err := CatalogStudy("nope"); err == nil {
		t.Error("unknown study accepted")
	}
}

func TestFacadeSimulateStudyWindows(t *testing.T) {
	st, err := CatalogStudy("Gromacs-evolution")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 20 {
		t.Errorf("windows = %d, want 20", len(traces))
	}
	// A windowed study with several runs is rejected.
	bad := st
	bad.Runs = append(bad.Runs, bad.Runs[0])
	if _, err := SimulateStudy(bad); err == nil {
		t.Error("multi-run windowed study accepted")
	}
}

func TestFacadeTraceFileRoundTrip(t *testing.T) {
	traces := demoTraces(t)
	path := filepath.Join(t.TempDir(), "demo.prv.txt")
	if err := WriteTraceFile(path, traces[0]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Bursts) != len(traces[0].Bursts) {
		t.Errorf("round trip lost bursts: %d vs %d", len(back.Bursts), len(traces[0].Bursts))
	}
}

func TestFacadeMetrics(t *testing.T) {
	if got := DefaultMetrics(); len(got) != 2 {
		t.Errorf("default metrics = %v", got)
	}
	if m, ok := MetricByName("IPC"); !ok || m.Name != "IPC" {
		t.Error("MetricByName(IPC) failed")
	}
}

func TestFacadeJSONExport(t *testing.T) {
	res, err := Track(demoTraces(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res, DefaultMetrics()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("facade JSON invalid: %v", err)
	}
	if doc["trackedRegions"].(float64) != 2 {
		t.Errorf("exported trackedRegions = %v", doc["trackedRegions"])
	}
}

// TestBaselineComparison is the paper's core argument made executable:
// the profile baseline reports a single average for a region whose
// behaviour is bimodal, while the tracking pipeline resolves the two
// behaviours into separate clusters and still correlates them as one code
// region across experiments.
func TestBaselineComparison(t *testing.T) {
	st, err := CatalogStudy("CGPOP")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := SimulateStudy(st)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline view: one row for btrop_operator, mean IPC ~0.25, flagged
	// multi-modal.
	prof := NewProfile(traces[0])
	var flagged bool
	for _, row := range prof.MultimodalRows() {
		if row.Stack.Function == "btrop_operator" {
			flagged = true
			// The mean is a value no invocation achieves: both modes are
			// >=7% away from it.
			if row.StdIPC < 0.01 {
				t.Errorf("bimodal region dispersion = %v", row.StdIPC)
			}
		}
	}
	if !flagged {
		t.Fatal("profile baseline failed to flag the bimodal region")
	}

	// Tracking view: the same code region appears as two clusters that
	// the combiner groups into one wide relation.
	res, err := Track(traces, st.Track)
	if err != nil {
		t.Fatal(err)
	}
	reg := res.RegionByPhase(2)
	if reg == nil {
		t.Fatal("tracking lost the bimodal region")
	}
	for fi := range res.Frames {
		if len(reg.Members[fi]) != 2 {
			t.Errorf("frame %d: tracked region resolves %d behaviours, want 2", fi, len(reg.Members[fi]))
		}
	}

	// And the classic comparison still works through CompareProfiles.
	deltas := CompareProfiles(NewProfile(traces[0]), NewProfile(traces[1]))
	if len(deltas) == 0 {
		t.Fatal("profile comparison empty")
	}
	for _, d := range deltas {
		if d.A == nil || d.B == nil {
			t.Errorf("region missing from a profile: %+v", d.Stack)
		}
		// xlf vs gfortran: ~flat duration despite fewer instructions.
		if d.DurationRatio < 0.95 || d.DurationRatio > 1.05 {
			t.Errorf("%s duration ratio = %v, want ~1", d.Stack, d.DurationRatio)
		}
	}
}

func TestTrackerAlias(t *testing.T) {
	tk := NewTracker(Config{})
	if tk == nil {
		t.Fatal("NewTracker returned nil")
	}
	frames, err := BuildFrames(demoTraces(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Track(frames)
	if err != nil || res.SpanningCount == 0 {
		t.Errorf("tracker alias run: %v, %+v", err, res)
	}
}

func TestExperimentsGeneratorStudiesResolve(t *testing.T) {
	// The EXPERIMENTS.md generator (report.WriteExperiments) requires
	// these catalog studies by name; keep them resolvable.
	for _, name := range []string{"WRF", "CGPOP", "NAS BT", "MR-Genesis", "HydroC"} {
		if _, err := CatalogStudy(name); err != nil {
			t.Errorf("generator study %q missing: %v", name, err)
		}
	}
}

func TestFacadeDocExampleCompiles(t *testing.T) {
	// The doc-comment quick start, executed.
	study, err := CatalogStudy("HydroC")
	if err != nil {
		t.Fatal(err)
	}
	study.Runs = study.Runs[:3]
	study.ParamValues = study.ParamValues[:3]
	res, err := RunStudy(study)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, trend := range res.TopTrends(IPC, 0.0) {
		lines = append(lines, fmt.Sprintf("%d %v", trend.RegionID, trend.Means()))
	}
	if len(lines) != 2 {
		t.Errorf("quick start lines = %v", lines)
	}
}
