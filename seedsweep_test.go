package perftrack

import (
	"bytes"
	"testing"

	"perftrack/internal/apps"
)

// TestOracleSeedSweepDeterminism widens TestStudyDeterminism from one
// study to a seed sweep: for each of 10 seeds, the full pipeline
// (simulate → frames → cluster → track → JSON export) runs twice and must
// produce byte-identical output. Any hidden source of nondeterminism —
// map iteration reaching the output, scheduling-dependent float merge
// order, a stray time or rand call — shows up as a diff on some seed.
func TestOracleSeedSweepDeterminism(t *testing.T) {
	export := func(seed uint64) []byte {
		st := apps.Synthetic(apps.SyntheticParams{
			Seed:       seed,
			Ranks:      8,
			Iterations: 3,
			FrameCount: 3,
			Phases:     4,
		})
		res, err := RunStudy(st)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf bytes.Buffer
		if err := WriteResultJSON(&buf, res, DefaultMetrics()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return buf.Bytes()
	}
	for seed := uint64(1); seed <= 10; seed++ {
		a, b := export(seed), export(seed)
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: two identical runs produced different exports", seed)
		}
	}
}
