#!/usr/bin/env bash
# bench_codec.sh — measures the trace codecs and rewrites BENCH_codec.json.
# The BenchmarkCodec* microbenchmarks run text and binary columnar
# (colbin) reads/writes over the same oracle trace, with b.SetBytes
# pinned to the TEXT size so MB/s is comparable across codecs. Gates:
#
#   1. colbin decode must be >= 5x faster than the text parse — the
#      reason ingest converts to binary at all.
#   2. the cached re-read path (DecodeColbinInto, a cache hit decoding
#      into a reused Trace) must be >= 10x faster than the text parse —
#      the reason the convert-on-first-read cache exists.
#
#   BENCHTIME=200x OUT=BENCH_codec.json scripts/bench_codec.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-200x}
OUT=${OUT:-BENCH_codec.json}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "codec bench: benchtime=$BENCHTIME" >&2
go test -run '^$' -bench 'BenchmarkCodec' -benchtime "$BENCHTIME" ./internal/trace/ \
    | tee "$tmp/bench.txt" >&2

ns() { awk -v n="$1" '$1 ~ "^"n"(-[0-9]+)?$" {print $3}' "$tmp/bench.txt"; }
allocs() { awk -v n="$1" '$1 ~ "^"n"(-[0-9]+)?$" {print $(NF-1)}' "$tmp/bench.txt"; }

text_read=$(ns BenchmarkCodecTextRead)
text_write=$(ns BenchmarkCodecTextWrite)
col_read=$(ns BenchmarkCodecColbinRead)
col_write=$(ns BenchmarkCodecColbinWrite)
col_into=$(ns BenchmarkCodecColbinReadInto)
col_flat=$(ns BenchmarkCodecColbinReadFlat)
col_into_allocs=$(allocs BenchmarkCodecColbinReadInto)

read_speedup=$(awk -v t="$text_read" -v c="$col_read" 'BEGIN {printf "%.2f", t / c}')
into_speedup=$(awk -v t="$text_read" -v c="$col_into" 'BEGIN {printf "%.2f", t / c}')

{
    echo '{'
    echo '  "suite": "trace codec: text vs binary columnar (colbin)",'
    echo "  \"date\": \"$(date -u +%F)\","
    echo "  \"go\": \"$(go version | awk '{print $3}')\","
    echo "  \"command\": \"scripts/bench_codec.sh (go test -bench BenchmarkCodec -benchtime $BENCHTIME ./internal/trace/)\","
    echo '  "workload": "One seeded oracle trace (32 ranks x 40 iterations x 2 phases, ~2560 bursts with full counter sets), encoded once per codec; every benchmark decodes or encodes the whole trace per iteration. SetBytes is the text encoding size for all entries, so MB/s compares codecs over the same logical payload.",'
    echo '  "nsPerOp": {'
    echo "    \"textRead\": $text_read,"
    echo "    \"textWrite\": $text_write,"
    echo "    \"colbinRead\": $col_read,"
    echo "    \"colbinWrite\": $col_write,"
    echo "    \"colbinReadInto\": $col_into,"
    echo "    \"colbinReadFlat\": $col_flat"
    echo '  },'
    echo '  "colbinReadIntoAllocsPerOp": '"$col_into_allocs"','
    echo '  "decodeSpeedup": {'
    echo "    \"colbinVsText\": $read_speedup,"
    echo '    "gate": "colbin decode must be >= 5x the text parse"'
    echo '  },'
    echo '  "cachedRereadSpeedup": {'
    echo "    \"colbinIntoVsText\": $into_speedup,"
    echo '    "gate": "cache-hit re-read (DecodeColbinInto) must be >= 10x the text parse"'
    echo '  }'
    echo '}'
} >"$OUT"

awk -v r="$read_speedup" 'BEGIN { if (r < 5.0) { print "bench_codec: FAIL: colbin/text decode speedup " r " < 5x"; exit 1 } }' >&2
awk -v r="$into_speedup" 'BEGIN { if (r < 10.0) { print "bench_codec: FAIL: cached re-read speedup " r " < 10x"; exit 1 } }' >&2
echo "wrote $OUT (colbin decode ${read_speedup}x, cached re-read ${into_speedup}x vs text parse)" >&2
