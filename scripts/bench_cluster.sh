#!/usr/bin/env bash
# bench_cluster.sh — boots a 1-node trackd and a 3-node trackd cluster
# locally (no docker: three processes on loopback ports), drives each
# with the trackload generator at the same mixed cold/cached rate, and
# merges the two latency scenarios into BENCH_cluster.json.
#
#   QPS=25 DURATION=10s OUT=BENCH_cluster.json scripts/bench_cluster.sh
set -euo pipefail
cd "$(dirname "$0")/.."

QPS=${QPS:-25}
DURATION=${DURATION:-10s}
CACHED=${CACHED:-0.5}
OUT=${OUT:-BENCH_cluster.json}

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "building trackd and trackload..." >&2
go build -o "$tmp/trackd" ./cmd/trackd
go build -o "$tmp/trackload" ./cmd/trackload

# Wait for a node's "listening on" line (the socket is bound and, with a
# fresh store, the journal replay backlog is empty).
wait_listen() {
    for _ in $(seq 1 600); do
        grep -q "trackd: listening on" "$1" && return 0
        sleep 0.05
    done
    echo "node never started; log follows" >&2
    cat "$1" >&2
    return 1
}

# ---- 1-node baseline ----
P1=7087
"$tmp/trackd" -addr "127.0.0.1:$P1" -workers 4 -store "$tmp/solo" \
    >"$tmp/solo.log" 2>&1 &
pids+=($!)
wait_listen "$tmp/solo.log"
echo "1-node bench: qps=$QPS duration=$DURATION cached=$CACHED" >&2
"$tmp/trackload" -addr "http://127.0.0.1:$P1" -qps "$QPS" -duration "$DURATION" \
    -cached "$CACHED" -name "1-node" -o "$tmp/one.json"
kill "${pids[0]}" 2>/dev/null || true

# ---- 3-node cluster ----
PORTS=(7091 7092 7093)
PEERS="n1=http://127.0.0.1:${PORTS[0]},n2=http://127.0.0.1:${PORTS[1]},n3=http://127.0.0.1:${PORTS[2]}"
for i in 0 1 2; do
    id="n$((i + 1))"
    "$tmp/trackd" -addr "127.0.0.1:${PORTS[$i]}" -workers 4 -store "$tmp/$id" \
        -node-id "$id" -peers "$PEERS" -probe-interval 500ms \
        >"$tmp/$id.log" 2>&1 &
    pids+=($!)
done
for i in 0 1 2; do wait_listen "$tmp/n$((i + 1)).log"; done
ADDRS="http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]},http://127.0.0.1:${PORTS[2]}"
echo "3-node bench: qps=$QPS duration=$DURATION cached=$CACHED" >&2
"$tmp/trackload" -addr "$ADDRS" -qps "$QPS" -duration "$DURATION" \
    -cached "$CACHED" -name "3-node" -o "$tmp/three.json"

# ---- merge ----
{
    echo '{'
    echo '  "suite": "trackd cluster load",'
    echo "  \"date\": \"$(date -u +%F)\","
    echo "  \"go\": \"$(go version | awk '{print $3}')\","
    echo "  \"command\": \"scripts/bench_cluster.sh (trackload -qps $QPS -duration $DURATION -cached $CACHED)\","
    echo '  "workload": "Open-loop mixed traffic: half resubmits a 6-job warm pool (content-addressed cache hits), half submits fresh two-trace jobs (oracle-generated, 2 ranks x 3 iterations x 2 phases) that execute the full pipeline; in the 3-node cluster, submissions round-robin across nodes, so roughly two thirds are forwarded to their consistent-hash owner and every completion replicates to one ring successor.",'
    echo '  "scenarios": ['
    sed 's/^/    /' "$tmp/one.json" | sed '$ s/$/,/'
    sed 's/^/    /' "$tmp/three.json"
    echo '  ]'
    echo '}'
} >"$OUT"
echo "wrote $OUT" >&2
