#!/bin/sh
# Ratcheted coverage gate: fail if aggregate statement coverage drops
# below the floor. The floor only ever moves up — when coverage rises,
# raise MIN_COVERAGE to just below the new total so regressions get
# caught instead of quietly eroding the suite.
set -eu

MIN_COVERAGE=77.0

cd "$(dirname "$0")/.."
go test -coverprofile=coverage.out ./... >/dev/null
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
rm -f coverage.out

echo "total statement coverage: ${total}% (floor: ${MIN_COVERAGE}%)"
ok=$(awk -v t="$total" -v m="$MIN_COVERAGE" 'BEGIN {print (t+0 >= m+0) ? 1 : 0}')
if [ "$ok" != 1 ]; then
    echo "coverage ${total}% is below the ratchet floor ${MIN_COVERAGE}%" >&2
    exit 1
fi
