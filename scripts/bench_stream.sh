#!/usr/bin/env bash
# bench_stream.sh — measures the live-ingestion path end to end and
# rewrites BENCH_stream.json. Two measurements:
#
#   1. HTTP appenders: boots a trackd with a store and drives STREAMS
#      concurrent live streams with the trackload generator, recording
#      append p50/p95/p99 and window-close latency separately.
#   2. Incremental vs batch window close: the internal/stream
#      microbenchmarks close the 10th window of a live session
#      (incremental index + frame-pair correlation) and re-run the
#      whole 10-window batch pipeline; the ratio is the reason the
#      streaming subsystem exists (gate: >= 3x).
#
#   STREAMS=8 QPS=50 DURATION=10s OUT=BENCH_stream.json scripts/bench_stream.sh
set -euo pipefail
cd "$(dirname "$0")/.."

STREAMS=${STREAMS:-8}
QPS=${QPS:-50}
DURATION=${DURATION:-10s}
CHUNK=${CHUNK:-32}
WINDOW=${WINDOW:-64}
OUT=${OUT:-BENCH_stream.json}

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "building trackd and trackload..." >&2
go build -o "$tmp/trackd" ./cmd/trackd
go build -o "$tmp/trackload" ./cmd/trackload

PORT=7107
"$tmp/trackd" -addr "127.0.0.1:$PORT" -workers 4 -store "$tmp/db" \
    >"$tmp/trackd.log" 2>&1 &
pids+=($!)
for _ in $(seq 1 600); do
    grep -q "trackd: listening on" "$tmp/trackd.log" && break
    sleep 0.05
done
grep -q "trackd: listening on" "$tmp/trackd.log" || {
    echo "trackd never started; log follows" >&2
    cat "$tmp/trackd.log" >&2
    exit 1
}

echo "stream bench: streams=$STREAMS qps=$QPS duration=$DURATION chunk=$CHUNK window=$WINDOW" >&2
"$tmp/trackload" -addr "http://127.0.0.1:$PORT" -streams "$STREAMS" -qps "$QPS" \
    -duration "$DURATION" -chunk "$CHUNK" -window "$WINDOW" \
    -ranks 4 -iters 5 -phases 2 -name "live-http" -o "$tmp/http.json"

echo "window-close microbench: incremental vs batch rerun..." >&2
go test -run '^$' -bench 'BenchmarkWindowClose10' -benchtime 5x ./internal/stream/ \
    | tee "$tmp/bench.txt" >&2
inc=$(awk '/BenchmarkWindowClose10Incremental/ {print $3}' "$tmp/bench.txt")
batch=$(awk '/BenchmarkWindowClose10BatchRerun/ {print $3}' "$tmp/bench.txt")
ratio=$(awk -v i="$inc" -v b="$batch" 'BEGIN {printf "%.2f", b / i}')

{
    echo '{'
    echo '  "suite": "trackd live streams",'
    echo "  \"date\": \"$(date -u +%F)\","
    echo "  \"go\": \"$(go version | awk '{print $3}')\","
    echo "  \"command\": \"scripts/bench_stream.sh (trackload -streams $STREAMS -qps $QPS -duration $DURATION -chunk $CHUNK -window $WINDOW)\","
    echo '  "workload": "Open-loop live ingestion: N resident streams on one trackd with a persistent store, each appender pacing 32-burst chunks at the target rate; count windows seal every 64 bursts, and each seal clusters the window incrementally, correlates it against the previous frame, persists the sealed window + cumulative export durably, and fans the rolling delta out to subscribers. The append population is the pure index-insertion path; the windowClose population carries the seal.",'
    echo '  "windowClose10": {'
    echo "    \"incrementalNsOp\": $inc,"
    echo "    \"batchRerunNsOp\": $batch,"
    echo "    \"speedup\": $ratio,"
    echo '    "gate": "incremental close must be >= 3x cheaper than re-running the 10-window batch pipeline"'
    echo '  },'
    echo '  "scenarios": ['
    sed 's/^/    /' "$tmp/http.json"
    echo '  ]'
    echo '}'
} >"$OUT"

awk -v r="$ratio" 'BEGIN { if (r < 3.0) { print "bench_stream: FAIL: incremental/batch speedup " r " < 3x"; exit 1 } }' >&2
echo "wrote $OUT (incremental window close ${ratio}x cheaper than batch rerun)" >&2
