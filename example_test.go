package perftrack_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"perftrack"
	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// ExampleTrack demonstrates the core workflow: simulate two experiments of
// a small SPMD application and track its computing regions across them.
func ExampleTrack() {
	arch := machine.MinoTauro()
	app := perftrack.AppSpec{
		Name: "example",
		Phases: []mpisim.PhaseSpec{
			{
				Name:       "solve",
				Stack:      trace.CallstackRef{Function: "solve", File: "solver.c", Line: 42},
				Instr:      func(s mpisim.Scenario) float64 { return 4e8 / float64(s.Ranks) },
				IPCFactor:  1.2 / arch.BaseIPC,
				MemFrac:    0.02,
				NoiseIPC:   -1, // disable jitter for a stable doc example
				NoiseInstr: -1,
			},
			{
				Name:       "exchange",
				Stack:      trace.CallstackRef{Function: "exchange", File: "comm.c", Line: 7},
				Instr:      func(s mpisim.Scenario) float64 { return 1e8 / float64(s.Ranks) },
				IPCFactor:  0.7 / arch.BaseIPC,
				MemFrac:    0.02,
				NoiseIPC:   -1,
				NoiseInstr: -1,
			},
		},
	}

	var traces []*perftrack.Trace
	for _, ranks := range []int{8, 16} {
		t, err := perftrack.Simulate(app, perftrack.Scenario{
			Label:      fmt.Sprintf("%d-ranks", ranks),
			Ranks:      ranks,
			Arch:       arch,
			Compiler:   machine.GFortran(),
			Iterations: 4,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, t)
	}

	res, err := perftrack.Track(traces, perftrack.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regions=%d coverage=%.0f%%\n", res.SpanningCount, 100*res.Coverage)
	for _, tr := range res.Regions {
		ipc, _ := res.Trend(tr.ID, perftrack.IPC)
		fmt.Printf("region %d IPC: %.2f -> %.2f\n", tr.ID, ipc.Means()[0], ipc.Means()[1])
	}
	// Output:
	// regions=2 coverage=100%
	// region 1 IPC: 1.20 -> 1.20
	// region 2 IPC: 0.70 -> 0.70
}

// ExampleNewProfile shows the profile-based baseline and the
// multimodality warning for behaviour that averages hide.
func ExampleNewProfile() {
	arch := machine.MinoTauro()
	app := perftrack.AppSpec{
		Name: "bimodal",
		Phases: []mpisim.PhaseSpec{{
			Name:       "kernel",
			Stack:      trace.CallstackRef{Function: "kernel", File: "k.c", Line: 1},
			Instr:      func(mpisim.Scenario) float64 { return 1e7 },
			IPCFactor:  1.0 / arch.BaseIPC,
			MemFrac:    0.01,
			NoiseIPC:   -1,
			NoiseInstr: -1,
			// Even ranks run 30% faster than odd ranks: a rank-distributed
			// bimodal behaviour.
			Vary: func(_ mpisim.Scenario, rank, _ int, _ *rand.Rand) mpisim.Variation {
				if rank%2 == 0 {
					return mpisim.Variation{IPCMul: 1.3}
				}
				return mpisim.Variation{}
			},
		}},
	}
	t, err := perftrack.Simulate(app, perftrack.Scenario{
		Label: "run", Ranks: 8, Arch: arch,
		Compiler: machine.GFortran(), Iterations: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	prof := perftrack.NewProfile(t)
	row := prof.Rows[0]
	fmt.Printf("mean IPC %.2f, flagged multimodal: %v\n",
		row.MeanIPC, row.BimodalityIPC > 5.0/9.0)
	// Output:
	// mean IPC 1.15, flagged multimodal: true
}
