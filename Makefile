GO ?= go

.PHONY: all build test vet race oracle sim mesh-sim stream-sim chaos fuzz-short cover serve-smoke store-smoke cluster-smoke trackeval check fuzz bench-core bench-compare bench-cluster bench-stream bench-codec clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# serve-smoke boots the real trackd binary on an ephemeral port, submits
# the synthetic study twice, and asserts the second submission is a cache
# hit with byte-identical results and sane /metrics counters.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./cmd/trackd

# store-smoke proves perfdb durability end to end, twice over: the
# graceful half (TestStoreSmoke) boots trackd with a persistent store,
# computes a result, SIGTERMs the daemon, and asserts a fresh daemon
# serves the resubmission from disk; the hard half (TestKill9Smoke)
# SIGKILLs the daemon mid-load and asserts the journal replays every
# acknowledged job before /readyz opens.
store-smoke:
	$(GO) test -run 'TestStoreSmoke|TestKill9Smoke' -count=1 ./cmd/trackd

# oracle runs the differential / metamorphic harness: every optimized
# path (grid DBSCAN, grid NN, parallel displacement, Needleman–Wunsch)
# checked for exact agreement with the brute-force references in
# internal/oracle across hundreds of seeded scenarios, plus the
# golden-file rendering tests and the seed-sweep determinism check.
oracle:
	$(GO) test -count=1 ./internal/oracle/
	$(GO) test -count=1 -run 'Oracle|Golden|Differential' ./...

# sim replays the seeded whole-schedule simulation of trackd + perfdb
# (submit / duplicate-burst / crash / restart interleavings) under the
# race detector: >=1000 schedules, no result lost, no key computed twice.
sim:
	$(GO) test -race -count=1 -run TestDeterministicSimulationSchedules ./internal/service/

# mesh-sim replays the whole-CLUSTER deterministic simulation under the
# race detector: seeded schedules over a simulated 3-node mesh (submit /
# duplicate bursts on distinct nodes / node crash+restart / partition+
# heal interleavings), proving cluster-wide exactly-once execution,
# R=2 replication with any-node reads, and journal-backed rebalance
# hand-off — plus the replay-races-rebalance schedule and the ring/
# membership unit tests.
mesh-sim:
	$(GO) test -race -count=1 -run 'TestCluster|TestRing|TestMembership|TestParsePeers' ./internal/service/ ./internal/mesh/

# stream-sim replays >=300 seeded live-stream schedules against the
# full service + store stack under the race detector: chunked appends,
# daemon crash/restart mid-stream (sessions resume from their sealed
# windows), and subscriber churn on the event feeds — no sealed window
# lost, no window evaluated twice, and the final persisted export
# bit-exact with the batch pipeline.
stream-sim:
	STREAM_SIM_SCHEDULES=300 $(GO) test -race -count=1 -run TestStreamSim ./internal/service/

# cluster-smoke boots a real 3-node trackd cluster on loopback, submits
# jobs round-robin, SIGKILLs one node, and asserts every stored result
# is still served byte-identically from every survivor.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 ./cmd/trackd

# chaos replays seeded fault schedules against the full service + journal
# + store stack under the race detector: IO faults (short writes, fsync
# failures, torn renames), hard crashes with journal tail tearing, and
# restarts — no acknowledged job lost, no fingerprint computed twice
# (beyond persist failures), byte-identical results after recovery. Also
# bounds journal replay: a 10k-entry journal must recover in < 1s.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosSchedules|TestJournalReplayBound' ./internal/service/

# fuzz-short gives each differential fuzz target a brief budget — enough
# to shake the seeded corpus and mutate around it on every check run.
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzDBSCANDifferential -fuzztime=5s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzNNDifferential -fuzztime=5s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDisplacementDifferential -fuzztime=5s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzAlignDifferential -fuzztime=5s ./internal/align/
	$(GO) test -run=^$$ -fuzz=FuzzStreamAppend -fuzztime=5s ./internal/stream/
	$(GO) test -run=^$$ -fuzz=FuzzScenarioRoundTrip -fuzztime=5s ./internal/trackeval/
	$(GO) test -run=^$$ -fuzz=FuzzColbinRoundTrip -fuzztime=5s ./internal/trace/

# trackeval runs the tracking-quality gate: the pinned planted-truth
# scenario corpus (all seeds, all families, fault-degraded frames) plus
# the root-cause diagnosis corpus must clear the scorecard floors in
# internal/trackeval/scorecard.go, and the scorecard must be seed-sweep
# deterministic. `trackctl eval -gate` runs the same floors from the CLI.
trackeval:
	$(GO) test -count=1 -run 'TestGate|TestScorecardSeedSweepDeterminism|TestDiagnosisCorpusAllSeeds' ./internal/trackeval/

# cover writes the aggregate statement-coverage profile; the ratchet in
# scripts/check_coverage.sh enforces the floor in CI.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# check is the pre-merge gate: static analysis, the full suite under the
# race detector, the oracle harness, the chaos/fault-injection schedules,
# the whole-cluster mesh simulation, the live-stream crash/churn
# simulation, the tracking-quality gate, a short fuzz pass, and the
# daemon end-to-end smokes (including the kill -9 crash-recovery smoke
# and the 3-node SIGKILL cluster smoke).
check: vet race oracle chaos mesh-sim stream-sim trackeval fuzz-short serve-smoke store-smoke cluster-smoke

# bench-core runs the analysis-core microbenchmark suite (clustering, NN,
# alignment, end-to-end tracking on the largest catalog studies). The
# committed numbers live in BENCH_core.json.
bench-core:
	$(GO) test -run '^$$' -bench BenchmarkCore -benchmem -benchtime 2s ./internal/cluster/ ./internal/align/
	$(GO) test -run '^$$' -bench BenchmarkCore -benchmem -benchtime 5x -timeout 20m .

# bench-compare reruns the suite briefly and gates on the committed
# baseline: >15% geometric-mean time regression across the matched
# benchmarks fails the target (see cmd/benchcmp).
bench-compare:
	{ $(GO) test -run '^$$' -bench BenchmarkCore -benchtime 2x ./internal/cluster/ ./internal/align/ && \
	  $(GO) test -run '^$$' -bench BenchmarkCore -benchtime 2x -timeout 20m .; } | \
	  $(GO) run ./cmd/benchcmp -baseline BENCH_core.json -tolerance 1.15

# bench-cluster boots a 1-node and a 3-node local cluster and drives
# both with the trackload generator, rewriting BENCH_cluster.json.
bench-cluster:
	scripts/bench_cluster.sh

# bench-stream drives live streams against a store-backed trackd with
# open-loop appenders (append vs window-close latency split) and runs
# the incremental-vs-batch window-close microbenchmark, rewriting
# BENCH_stream.json; fails if the incremental close is not >= 3x
# cheaper than the batch rerun.
bench-stream:
	scripts/bench_stream.sh

# bench-codec runs the trace-codec microbenchmarks (text vs binary
# columnar reads/writes over the same oracle trace), rewriting
# BENCH_codec.json; fails if colbin decode is not >= 5x the text parse
# or the cache-hit re-read (DecodeColbinInto) is not >= 10x.
bench-codec:
	scripts/bench_codec.sh

# A short fuzzing pass over the trace decoders (lenient + strict + CSV).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLenientRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzRead$$ -fuzztime=30s ./internal/trace/

clean:
	$(GO) clean ./...
