GO ?= go

.PHONY: all build test vet race serve-smoke store-smoke check fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# serve-smoke boots the real trackd binary on an ephemeral port, submits
# the synthetic study twice, and asserts the second submission is a cache
# hit with byte-identical results and sane /metrics counters.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./cmd/trackd

# store-smoke proves perfdb durability end to end: boot trackd with a
# persistent store, compute a result, SIGTERM the daemon, boot a fresh
# one over the same directory, and assert the resubmission is served as
# a hit from disk without re-running the pipeline.
store-smoke:
	$(GO) test -run TestStoreSmoke -count=1 ./cmd/trackd

# check is the pre-merge gate: static analysis, the full suite under the
# race detector, and the daemon end-to-end smokes.
check: vet race serve-smoke store-smoke

# A short fuzzing pass over the trace decoders (lenient + strict + CSV).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLenientRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzRead$$ -fuzztime=30s ./internal/trace/

clean:
	$(GO) clean ./...
