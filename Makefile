GO ?= go

.PHONY: all build test vet race check fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check: vet race

# A short fuzzing pass over the trace decoders (lenient + strict + CSV).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzLenientRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzRead$$ -fuzztime=30s ./internal/trace/

clean:
	$(GO) clean ./...
