package perftrack

import (
	"bytes"
	"testing"
)

// TestStudyDeterminism asserts the whole pipeline is bit-reproducible:
// simulating and tracking a catalog study twice yields byte-identical
// JSON exports. Reviewers can diff artefacts across machines and runs.
func TestStudyDeterminism(t *testing.T) {
	run := func() []byte {
		st, err := CatalogStudy("CGPOP")
		if err != nil {
			t.Fatal(err)
		}
		// Shrink for speed; determinism is scale-independent.
		for i := range st.Runs {
			st.Runs[i].Scenario.Ranks = 16
			st.Runs[i].Scenario.Iterations = 3
		}
		res, err := RunStudy(st)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteResultJSON(&buf, res, DefaultMetrics()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different exports")
	}
}
